"""Module-level SPMD programs for the launcher CLI tests.

The ``python -m repro.runtime.launch`` entry point resolves programs by
``module:function`` reference, so these must live at module scope (the
closures used elsewhere in the test suite cannot be named on a command
line).
"""

import numpy as np

from repro.core import api


def allreduce_demo(env):
    """Sum rank-dependent vectors; every rank returns the total."""
    v = np.arange(16, dtype=np.float64) * (env.rank % 7 + 1) + env.rank
    out = yield from api.allreduce(env, v, op="sum")
    return float(out[1])


def pingpong(env):
    """Rank 0 <-> rank 1 round trip; other ranks idle."""
    payload = np.arange(64, dtype=np.float64)
    if env.rank == 0:
        yield env.send(1, payload, tag=1)
        back = yield env.recv(1, tag=2)
        return float(back[-1])
    if env.rank == 1:
        got = yield env.recv(0, tag=1)
        yield env.send(0, got * 2, tag=2)
        return float(got[-1])
    return None


def crasher(env):
    """Rank 1 raises: exercises the CLI's RankError exit path."""
    if env.rank == 1:
        raise RuntimeError("deliberate failure for the CLI test")
    yield env.delay(0.0)
    return env.rank
