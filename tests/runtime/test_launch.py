"""Launcher tests: failure propagation, watchdog, CLI, run surface."""

import time

import numpy as np
import pytest

from repro.core import api
from repro.runtime import (ProcessMachine, RankError,
                           RuntimeHangDiagnosis)
from repro.runtime import launch as launch_mod


def _echo(env):
    yield env.delay(0.0)
    return env.rank


class TestRunSurface:
    def test_per_rank_results_and_times(self):
        res = ProcessMachine(3, timeout=20).run(_echo)
        assert res.results == [0, 1, 2]
        assert res.nprocs == 3
        assert res.transport == "local"
        assert set(res.rank_times) == {0, 1, 2}
        assert res.time >= 0.0

    def test_inactive_ranks_return_none(self):
        def prog(env):
            if env.rank == 0:
                yield env.send(2, "hi", tag=4)
                return "sent"
            got = yield env.recv(0, tag=4)
            return got

        res = ProcessMachine(4, timeout=20).run(prog, ranks=[0, 2])
        assert res.results == ["sent", None, "hi", None]

    def test_program_args_forwarded(self):
        def prog(env, base, *, scale=1):
            yield env.delay(0.0)
            return (base + env.rank) * scale

        res = ProcessMachine(2, timeout=20).run(prog, 10, scale=3)
        assert res.results == [30, 33]

    def test_constructor_validation(self):
        from repro.core.topology import LinearArray
        with pytest.raises(ValueError, match="nprocs or topology"):
            ProcessMachine()
        with pytest.raises(ValueError, match="topology has"):
            ProcessMachine(4, topology=LinearArray(8))
        with pytest.raises(ValueError, match="unknown transport"):
            ProcessMachine(2, transport="smoke-signals")
        with pytest.raises(ValueError, match="out of range"):
            ProcessMachine(2, timeout=5).run(_echo, ranks=[0, 7])
        # nprocs inferred from the topology
        assert ProcessMachine(topology=LinearArray(5)).nnodes == 5

    def test_non_generator_program_rejected(self):
        def not_spmd(env):
            return env.rank

        with pytest.raises(RankError, match="yield style"):
            ProcessMachine(2, timeout=10).run(not_spmd)


class TestFailurePropagation:
    def test_rank_exception_carries_traceback(self):
        def prog(env):
            if env.rank == 1:
                raise ValueError("rank 1 exploded deliberately")
            out = yield from api.allreduce(env, np.ones(8))
            return out

        with pytest.raises(RankError) as ei:
            ProcessMachine(3, timeout=8, hard_grace=2.0).run(prog)
        err = ei.value
        assert set(err.failures) == {1}
        assert "rank 1 exploded deliberately" in err.failures[1]
        assert "ValueError" in err.failures[1]
        # peers stuck waiting on the dead rank are reported as collateral
        assert "rank 1 exploded" in str(err)

    def test_hang_produces_typed_diagnosis(self):
        def prog(env):
            if env.rank == 0:
                got = yield env.recv(1, tag=99)  # never sent
                return got
            yield env.delay(0.0)
            return env.rank

        t0 = time.monotonic()
        with pytest.raises(RuntimeHangDiagnosis) as ei:
            ProcessMachine(2, timeout=2.0, hard_grace=2.0).run(prog)
        diag = ei.value
        assert time.monotonic() - t0 < 8.0
        assert 1 in diag.finished
        assert 0 in diag.blocked
        assert "src=1" in diag.blocked[0]
        assert "tag=99" in diag.blocked[0]
        d = diag.to_dict()
        assert d["finished"] == [1]
        assert "tag=99" in d["blocked"]["0"]

    def test_watchdog_kills_wedged_rank(self):
        # A rank stuck *outside* the progress loop never trips its soft
        # deadline; the parent's hard deadline must reap it and report
        # its last status.
        def prog(env):
            if env.rank == 0:
                time.sleep(60)  # wedged in user code, not in a wait
            yield env.delay(0.0)
            return env.rank

        t0 = time.monotonic()
        with pytest.raises(RuntimeHangDiagnosis) as ei:
            ProcessMachine(2, timeout=1.0, hard_grace=1.0).run(prog)
        assert time.monotonic() - t0 < 10.0
        diag = ei.value
        assert diag.killed == [0]
        assert "killed by launcher watchdog" in diag.blocked[0]

    def test_deadlock_all_ranks_reported(self):
        def prog(env):
            # everyone waits on their left neighbour; nobody sends
            got = yield env.recv((env.rank - 1) % env.nranks, tag=0)
            return got

        with pytest.raises(RuntimeHangDiagnosis) as ei:
            ProcessMachine(3, timeout=1.5, hard_grace=2.0).run(prog)
        assert set(ei.value.blocked) == {0, 1, 2}
        assert ei.value.finished == []


class TestCli:
    def test_cli_runs_program(self, capsys):
        rc = launch_mod.main(["--np", "3", "--params", "unit",
                              "--topology", "linear:3",
                              "--timeout", "30",
                              "tests.runtime.progs:allreduce_demo"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "# 3 ranks over local transport" in out
        # allreduce of arange(16)*(r%7+1)+r at index 1: sum of (r%7+1)+r
        want = float(sum((r % 7 + 1) + r for r in range(3)))
        assert f"rank 0: {want!r}" in out

    def test_cli_pingpong_tcp(self, capsys):
        rc = launch_mod.main(["--np", "2", "--transport", "tcp",
                              "--timeout", "30",
                              "tests.runtime.progs:pingpong"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "rank 0: 126.0" in out  # 63 doubled on the way back

    def test_cli_reports_rank_error(self, capsys):
        rc = launch_mod.main(["--np", "2", "--timeout", "8",
                              "tests.runtime.progs:crasher"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "deliberate failure for the CLI test" in err

    def test_cli_rejects_bad_specs(self):
        with pytest.raises(SystemExit):
            launch_mod.main(["--np", "2", "no-colon-here"])
        with pytest.raises(SystemExit):
            launch_mod.main(["--np", "2", "--topology", "klein-bottle:4",
                             "tests.runtime.progs:pingpong"])
        with pytest.raises(SystemExit):
            launch_mod.main(["--np", "2", "--topology", "mesh:2xQ",
                             "tests.runtime.progs:pingpong"])
