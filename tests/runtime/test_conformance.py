"""Cross-backend conformance: real processes vs the simulator oracle.

Two layers of evidence that the process backend computes exactly what
the simulator computes:

* a **matrix** of all seven collectives over p in {2, 3, 4, 8} linear
  arrays (power-of-two and not), each run on both backends with the
  same machine description and compared **byte-identically** (same
  params + topology => ``algorithm="auto"`` resolves the same strategy
  on both backends => same combine order => bit-equal floats), plus
  checked against the sequential oracles of
  :mod:`repro.core.validation`;
* a **differential replay** of the frozen SPMD golden corpus
  (tests/sim/spmd_corpus.py): per-rank results of the real run must
  hash to the committed ``result_sha256`` goldens.  Entries that
  return ``env.now`` (barrier, point-to-point churn) are excluded —
  wall clocks are backend-dependent by design; payload entries are
  all covered.  A fast slice runs in tier-1; the full corpus runs
  when ``REPRO_RUNTIME_FULL`` is set (the runtime-smoke CI job).

Group collectives ride along: ``split`` / ``row_comm`` / ``col_comm``
derive the same context ids on both backends, so concurrent
subcommunicator traffic must also be byte-identical.
"""

import hashlib
import json
import os

import numpy as np
import pytest

from repro.core import api
from repro.core import validation as V
from repro.core.communicator import Communicator
from repro.core.partition import partition_sizes
from repro.runtime import ProcessMachine
from repro.sim import LinearArray, Machine, Mesh2D, UNIT, preset
from tests.sim.spmd_corpus import (CORPUS, GOLDEN_PATH, _topo,
                                   canonical_results)

FULL = bool(os.environ.get("REPRO_RUNTIME_FULL"))

_N = 72  # uneven over p=3 on purpose

OPS = ["bcast", "reduce", "allreduce", "collect", "reduce_scatter",
       "scatter", "gather"]
P_VALUES = [2, 3, 4, 8]


def _vec(j, n):
    return np.arange(n, dtype=np.float64) * (j % 5 + 1) + 3 * j


def _op_prog(op, p):
    sizes = partition_sizes(_N, p)

    def prog(env):
        me = env.rank
        if op == "bcast":
            buf = _vec(0, _N) if me == 0 else None
            out = yield from api.bcast(env, buf, root=0, total=_N)
        elif op == "reduce":
            out = yield from api.reduce(env, _vec(me, _N), op="sum",
                                        root=0)
        elif op == "allreduce":
            out = yield from api.allreduce(env, _vec(me, _N), op="sum")
        elif op == "collect":
            out = yield from api.collect(env, _vec(me, sizes[me]),
                                         sizes=sizes)
        elif op == "reduce_scatter":
            out = yield from api.reduce_scatter(env, _vec(me, _N),
                                                op="sum", sizes=sizes)
        elif op == "scatter":
            buf = _vec(0, _N) if me == 0 else None
            out = yield from api.scatter(env, buf, root=0, total=_N,
                                         sizes=sizes)
        elif op == "gather":
            out = yield from api.gather(env, _vec(me, sizes[me]),
                                        root=0, sizes=sizes)
        else:  # pragma: no cover
            raise AssertionError(op)
        return out

    return prog, sizes


def _reference(op, p, sizes):
    if op == "bcast":
        return V.ref_bcast(_vec(0, _N), p)
    if op == "reduce":
        return V.ref_reduce([_vec(j, _N) for j in range(p)], "sum", root=0)
    if op == "allreduce":
        return V.ref_allreduce([_vec(j, _N) for j in range(p)], "sum")
    if op == "collect":
        return V.ref_collect([_vec(j, sizes[j]) for j in range(p)])
    if op == "reduce_scatter":
        return V.ref_reduce_scatter([_vec(j, _N) for j in range(p)],
                                    "sum", sizes=sizes)
    if op == "scatter":
        return V.ref_scatter(_vec(0, _N), p, sizes=sizes)
    if op == "gather":
        return V.ref_gather([_vec(j, sizes[j]) for j in range(p)], root=0)
    raise AssertionError(op)  # pragma: no cover


@pytest.mark.parametrize("p", P_VALUES)
@pytest.mark.parametrize("op", OPS)
def test_matrix_byte_identical_to_simulator(op, p):
    prog, sizes = _op_prog(op, p)
    topo = LinearArray(p)
    sim = Machine(topo, UNIT).run(prog)
    real = ProcessMachine(p, params=UNIT, topology=topo,
                          timeout=30).run(prog)

    refs = _reference(op, p, sizes)
    for j in range(p):
        got_sim, got_real, want = sim.results[j], real.results[j], refs[j]
        if want is None:
            assert got_sim is None and got_real is None, (op, p, j)
            continue
        # both backends vs the sequential oracle (combine order may
        # legitimately differ from the oracle's, hence allclose) ...
        assert np.allclose(got_real, want, rtol=1e-12, atol=0.0), (op, p, j)
        # ... and *byte-identical* to each other: same strategy, same
        # combine order, bit-equal floats
        assert got_sim.dtype == got_real.dtype, (op, p, j)
        assert np.array_equal(got_sim, got_real), (op, p, j)


@pytest.mark.parametrize("p", [2, 3, 4])
@pytest.mark.parametrize("op", OPS)
def test_traced_matrix_is_instrumentation_neutral(op, p):
    # wall-clock tracing (clock-sync exchange + per-message records)
    # must not perturb results: the traced real run stays byte-identical
    # to the simulator oracle
    prog, _ = _op_prog(op, p)
    topo = LinearArray(p)
    sim = Machine(topo, UNIT).run(prog)
    real = ProcessMachine(p, params=UNIT, topology=topo,
                          timeout=30).run(prog, trace=True)
    for j in range(p):
        got_sim, got_real = sim.results[j], real.results[j]
        if got_sim is None:
            assert got_real is None, (op, p, j)
            continue
        assert got_sim.dtype == got_real.dtype, (op, p, j)
        assert np.array_equal(got_sim, got_real), (op, p, j)
    assert real.trace is not None
    assert real.trace.ranks == list(range(p))
    assert real.trace.message_count() > 0


def test_matrix_byte_identical_over_tcp():
    prog, _ = _op_prog("allreduce", 4)
    topo = LinearArray(4)
    sim = Machine(topo, UNIT).run(prog)
    real = ProcessMachine(4, params=UNIT, topology=topo, transport="tcp",
                          timeout=30).run(prog)
    for j in range(4):
        assert np.array_equal(sim.results[j], real.results[j]), j


def test_barrier_orders_ranks():
    # each rank arrives staggered by its own clock; after the barrier
    # every rank's clock must have passed the slowest arrival (minus
    # slack for differing process start instants)
    def prog(env):
        yield env.delay(0.2 * env.rank)
        yield from api.barrier(env)
        return env.now

    res = ProcessMachine(4, timeout=30).run(prog)
    slowest_arrival = 0.2 * 3
    for r in range(4):
        assert res.results[r] >= slowest_arrival - 0.15, (r, res.results)


def test_split_row_col_byte_identical():
    topo = Mesh2D(2, 3)

    def prog(env):
        comm = Communicator.world(env)
        sub = yield from comm.split(color=comm.rank % 2, key=-comm.rank)
        a = yield from sub.allreduce(_vec(env.rank, 48))
        row = comm.row_comm()
        b = yield from row.allgather(_vec(env.rank, 5))
        col = comm.col_comm()
        buf = _vec(2, 24) if col.rank == 0 else None
        c = yield from col.bcast(buf, root=0, total=24)
        yield from comm.barrier()
        return a, b, c, sub.context_id, row.context_id, col.context_id

    sim = Machine(topo, UNIT).run(prog)
    real = ProcessMachine(6, params=UNIT, topology=topo,
                          timeout=30).run(prog)
    for j in range(6):
        sa, sb, sc, *sids = sim.results[j]
        ra, rb, rc, *rids = real.results[j]
        assert sids == rids, f"context ids diverged on rank {j}"
        for s, r in ((sa, ra), (sb, rb), (sc, rc)):
            assert np.array_equal(s, r), j


# ----------------------------------------------------------------------
# differential corpus replay
# ----------------------------------------------------------------------

with open(GOLDEN_PATH) as _f:
    GOLDENS = json.load(_f)

#: corpus entries whose return values are payloads (byte-comparable);
#: barrier/ptp entries return env.now, which is backend-dependent.
PAYLOAD_ENTRIES = [n for n in CORPUS
                   if "barrier" not in n and "ptp" not in n]

#: diverse tier-1 slice: every op, both regimes, auto dispatch, a
#: non-power-of-two torus, a 24-node mesh, group-shaped entries
FAST_SLICE = [
    "bcast-short-p12",
    "reduce-long-p12",
    "allreduce-auto-p12",
    "collect-auto-p12",
    "reduce_scatter-auto-p12",
    "scatter-p12",
    "gather-p12",
    "collect-long-torus3x4",
    "allreduce-auto-mesh4x6",
    "bcast-auto-subset",
]

_SLOW = [n for n in PAYLOAD_ENTRIES if n not in FAST_SLICE]
_CASES = FAST_SLICE + [
    pytest.param(n, marks=pytest.mark.skipif(
        not FULL, reason="full corpus replay: set REPRO_RUNTIME_FULL=1"))
    for n in _SLOW
]


def test_fast_slice_is_current():
    missing = [n for n in FAST_SLICE if n not in PAYLOAD_ENTRIES]
    assert not missing, f"FAST_SLICE names unknown entries: {missing}"


@pytest.mark.parametrize("name", _CASES)
def test_corpus_replay_matches_golden(name):
    topo_spec, params_name, prog = CORPUS[name]
    topo = _topo(*topo_spec)
    machine = ProcessMachine(topo.nnodes, params=preset(params_name),
                             topology=topo, timeout=120)
    res = machine.run(prog)
    digest = hashlib.sha256(
        canonical_results(res).encode()).hexdigest()
    assert digest == GOLDENS[name]["result_sha256"], (
        f"real backend diverged from simulator golden on {name}")
