"""Selection-regret sweep on real processes: structure and gating."""

import pytest

from repro.analysis.audit import (RUNTIME_GRIDS, audit_cell_runtime,
                                  build_runtime_audit, check_runtime,
                                  render_runtime)
from repro.core.params import MachineParams

PARAMS = MachineParams(alpha=2e-4, beta=5e-9, gamma=1e-9,
                       sw_overhead=1e-6, link_capacity=1.0)

TINY_GRID = {"operations": ("bcast",), "shapes": (("line", 2),),
             "lengths": (256,)}


class _FakeProfile:
    params = PARAMS

    def to_json(self):
        return {"host": "test", "transport": "local",
                "params": PARAMS.to_dict()}


def test_runtime_grids_registered():
    assert set(RUNTIME_GRIDS) == {"smoke", "full"}
    for grid in RUNTIME_GRIDS.values():
        assert set(grid) == {"operations", "shapes", "lengths"}


def test_audit_cell_measures_every_candidate():
    cell = audit_cell_runtime("bcast", ("line", 2), 256, PARAMS,
                              reps=1, trials=1, timeout=60)
    assert cell.operation == "bcast"
    assert cell.p == 2
    assert len(cell.candidates) >= 1
    for cand in cell.candidates:
        assert cand.measured > 0.0
        assert cand.predicted > 0.0
    assert cell.chosen in {c.strategy for c in cell.candidates}
    assert cell.best_measured <= cell.chosen_measured
    assert cell.regret >= 1.0


def test_build_report_structure_and_gate():
    report = build_runtime_audit(TINY_GRID, profile=_FakeProfile(),
                                 reps=1, trials=1)
    assert report["backend"] == "runtime"
    assert report["grid"] == "custom"
    assert report["profile"]["params"] == PARAMS.to_dict()
    assert report["regret"]["count"] == 1
    assert report["model_error"]["count"] >= 1
    assert len(report["cells"]) == 1
    assert report["cells"][0]["chosen"]
    assert "regret" in render_runtime(report)
    # the gate passes iff the median regret clears the threshold
    assert check_runtime(report, max_median_regret=1e9) == []
    failures = check_runtime(report, max_median_regret=0.0)
    assert failures and "regret" in failures[0]


def test_empty_report_fails_check():
    empty = {"regret": {"count": 0}, "model_error": {"count": 0}}
    assert check_runtime(empty) == ["runtime regret sweep produced "
                                    "no cells"]
