"""Integration torture tests: long random sequences of mixed collectives.

Each program runs a seeded random schedule of operations — whole-machine
and subgroup collectives, different roots, ops, lengths and algorithm
overrides, interleaved across disjoint groups — and every single result
is checked against the sequential oracles.  This exercises the tag
discipline, the FIFO matching, subgroup construction, and the fluid
network under realistic mixed traffic, all at once.
"""

import random

import numpy as np
import pytest

from repro.core import api
from repro.core.validation import (ref_allreduce, ref_bcast, ref_collect,
                                   ref_reduce, ref_reduce_scatter)
from repro.sim import LinearArray, Machine, Mesh2D, PARAGON, Torus2D, UNIT

OPERATIONS = ("bcast", "allreduce", "reduce", "collect", "reduce_scatter")
ALGORITHMS = ("auto", "short", "long")


def make_schedule(seed, p, steps):
    """A deterministic random schedule every rank can rebuild locally."""
    rng = random.Random(seed)
    schedule = []
    for k in range(steps):
        op = rng.choice(OPERATIONS)
        algorithm = rng.choice(ALGORITHMS)
        n = rng.choice([1, 7, 16, 64, 129])
        root = rng.randrange(p)
        # occasionally operate on a contiguous subgroup
        if rng.random() < 0.4 and p >= 4:
            lo = rng.randrange(p - 2)
            hi = rng.randrange(lo + 2, p + 1)
            group = list(range(lo, hi))
            root = rng.randrange(len(group))
        else:
            group = list(range(p))
        schedule.append((op, algorithm, n, root, group, k + 1))
    return schedule


def expected_results(schedule, p):
    """Oracle outcomes per step, per rank."""
    out = []
    for op, algorithm, n, root, group, tag in schedule:
        g = len(group)
        if op == "bcast":
            x = np.arange(n, dtype=np.float64) * tag
            vals = ref_bcast(x, g)
        elif op == "allreduce":
            vecs = [np.arange(n, dtype=np.float64) + i for i in range(g)]
            vals = ref_allreduce(vecs, "sum")
        elif op == "reduce":
            vecs = [np.arange(n, dtype=np.float64) + i for i in range(g)]
            vals = ref_reduce(vecs, "sum", root)
        elif op == "collect":
            blocks = [np.full(3, float(i) + tag) for i in range(g)]
            vals = ref_collect(blocks)
        else:
            vecs = [np.full(n * g, float(i + 1)) for i in range(g)]
            vals = ref_reduce_scatter(vecs, "sum")
        out.append(vals)
    return out


def workload_program(env, schedule):
    """Run the schedule; return per-step results for checking."""
    results = []
    for op, algorithm, n, root, group, tag in schedule:
        if env.rank not in group:
            results.append("skip")
            continue
        lrank = group.index(env.rank)
        if op == "bcast":
            x = (np.arange(n, dtype=np.float64) * tag
                 if lrank == root else None)
            got = yield from api.bcast(env, x, root=root, group=group,
                                       total=n, algorithm=algorithm,
                                       tag=tag)
        elif op == "allreduce":
            v = np.arange(n, dtype=np.float64) + lrank
            got = yield from api.allreduce(env, v, "sum", group=group,
                                           algorithm=algorithm, tag=tag)
        elif op == "reduce":
            v = np.arange(n, dtype=np.float64) + lrank
            got = yield from api.reduce(env, v, "sum", root, group=group,
                                        algorithm=algorithm, tag=tag)
        elif op == "collect":
            mine = np.full(3, float(lrank) + tag)
            got = yield from api.collect(env, mine, group=group,
                                         algorithm=algorithm, tag=tag)
        else:
            v = np.full(n * len(group), float(lrank + 1))
            got = yield from api.reduce_scatter(env, v, "sum",
                                                group=group,
                                                algorithm=algorithm,
                                                tag=tag)
        results.append(got)
    return results


def check(run, schedule, p):
    expected = expected_results(schedule, p)
    for step, (op, algorithm, n, root, group, tag) in enumerate(schedule):
        vals = expected[step]
        for lrank, node in enumerate(group):
            got = run.results[node][step]
            want = vals[lrank]
            if want is None:
                assert got is None, (step, op, node)
            else:
                assert got is not None, (step, op, node)
                assert np.allclose(got, want), (step, op, node)
        for node in range(p):
            if node not in group:
                assert run.results[node][step] == "skip"


@pytest.mark.parametrize("seed", [11, 23, 37, 58])
def test_random_workload_linear(seed):
    p = 9
    schedule = make_schedule(seed, p, steps=12)
    machine = Machine(LinearArray(p), UNIT)
    run = machine.run(workload_program, schedule)
    check(run, schedule, p)


@pytest.mark.parametrize("seed", [5, 17])
def test_random_workload_mesh(seed):
    p = 12
    schedule = make_schedule(seed, p, steps=10)
    machine = Machine(Mesh2D(3, 4), PARAGON)
    run = machine.run(workload_program, schedule)
    check(run, schedule, p)


def test_random_workload_torus():
    p = 16
    schedule = make_schedule(99, p, steps=10)
    machine = Machine(Torus2D(4, 4), PARAGON)
    run = machine.run(workload_program, schedule)
    check(run, schedule, p)


def test_disjoint_groups_fully_concurrent():
    """Two disjoint halves run different collective sequences at the
    same time; results and isolation must both hold."""
    p = 12

    def prog(env):
        if env.rank < 6:
            group = list(range(6))
            v = np.full(32, float(env.rank))
            a = yield from api.allreduce(env, v, "sum", group=group,
                                         tag=1)
            b = yield from api.collect(env, np.full(2, float(env.rank)),
                                       group=group, tag=2)
            return float(a[0]), float(b.sum())
        group = list(range(6, 12))
        mine = np.full(2, float(env.rank))
        b = yield from api.collect(env, mine, group=group, tag=1)
        v = np.full(32, float(env.rank))
        a = yield from api.allreduce(env, v, "sum", group=group, tag=2)
        return float(a[0]), float(b.sum())

    run = Machine(LinearArray(p), UNIT).run(prog)
    lo = sum(range(6))
    hi = sum(range(6, 12))
    for i, (a, b) in enumerate(run.results):
        if i < 6:
            assert a == lo and b == 2 * lo
        else:
            assert a == hi and b == 2 * hi


def test_determinism_across_runs():
    """The same schedule must produce bit-identical times and results."""
    p = 8
    schedule = make_schedule(42, p, steps=8)
    machine = Machine(Mesh2D(2, 4), PARAGON)
    r1 = machine.run(workload_program, schedule)
    r2 = machine.run(workload_program, schedule)
    assert r1.time == r2.time
    assert r1.messages == r2.messages
