"""Smoke tests running the shipped examples end to end.

The examples are the library's public face; these tests execute their
``main()`` functions (the quickstart, which sweeps a 512-node machine
for minutes, is exercised at reduced scale instead).
"""

import importlib.util
import os
import sys

import numpy as np
import pytest

EXAMPLES = os.path.join(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))), "examples")


def load_example(name):
    path = os.path.join(EXAMPLES, name + ".py")
    spec = importlib.util.spec_from_file_location("example_" + name, path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestExamples:
    def test_summa_matmul(self, capsys):
        mod = load_example("summa_matmul")
        mod.main()
        out = capsys.readouterr().out
        assert "OK" in out

    def test_cg_solver(self, capsys):
        mod = load_example("cg_solver")
        mod.main()
        out = capsys.readouterr().out
        assert "CG converged" in out

    def test_jacobi_2d(self, capsys):
        mod = load_example("jacobi_2d")
        mod.main()
        out = capsys.readouterr().out
        assert "reproduce the sequential sweep" in out

    def test_port_the_library(self, capsys):
        mod = load_example("port_the_library")
        mod.main()
        out = capsys.readouterr().out
        assert "ported with measurements alone" in out

    def test_strategy_explorer(self, capsys):
        mod = load_example("strategy_explorer")
        mod.explore(30, "bcast")
        out = capsys.readouterr().out
        assert "30 nodes" in out
        assert "(30, M)" in out

    def test_quickstart_reduced(self):
        """The quickstart's programs at a fraction of its scale."""
        mod = load_example("quickstart")
        from repro.sim import Machine, Mesh2D, PARAGON
        machine = Machine(Mesh2D(4, 8), PARAGON)
        icc = machine.run(mod.icc_program, 1024)
        nx = machine.run(mod.nx_program, 1024)
        assert icc.results[0] == nx.results[0]
        assert icc.time < nx.time
