"""Differential conformance: scalar vs vectorized fluid-network fill.

:mod:`repro.sim.network` carries two interchangeable progressive-filling
inner loops — the original scalar walk (kept behind ``REPRO_SIM_SCALAR=1``)
and the flat-array vectorized one.  The contract is *bit-identity*: same
rates, same completion instants, same event and recomputation counts, so
the dispatch threshold is purely a performance knob.  This suite pins
that contract three ways:

* every golden-corpus entry, run in both modes with the vectorized path
  forced onto **every** component (``REPRO_SIM_VEC_MIN=0``), must agree
  on the full fingerprint plus the engine/network counters;
* the op x algorithm x p x group-shape conformance matrix must agree
  the same way (a deterministic slice in tier-1; the whole 216-case
  matrix under ``REPRO_SIM_DIFF_FULL=1``, set by the CI job);
* hypothesis-generated random flow patterns, plus the degenerate
  components (single flow, zero capacity) where the fast paths and
  defensive branches live.

Env handling: the network reads ``REPRO_SIM_SCALAR`` / ``REPRO_SIM_VEC_MIN``
at construction, so each mode gets a fresh machine via monkeypatch.
"""

import math
import os
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (FullyConnected, Hypercube, LinearArray, Machine,
                       Mesh2D, Torus2D, UNIT)
from repro.sim.network import FluidNetwork
from tests.core import test_conformance_matrix as matrix
from tests.sim import spmd_corpus as corpus


def _counters(run):
    return {
        "events": run.events,
        "flows": run.flows,
        "messages": run.messages,
        "rate_recomputations": run.rate_recomputations,
    }


def _run_both(monkeypatch, thunk):
    """Run ``thunk`` once per mode and return both outcomes.

    Scalar mode: ``REPRO_SIM_SCALAR=1``.  Vectorized mode: default
    dispatch with the size threshold forced to zero, so *every*
    multi-flow component exercises the flat-array loop, not just the
    ones past the perf crossover.
    """
    monkeypatch.setenv("REPRO_SIM_SCALAR", "1")
    monkeypatch.delenv("REPRO_SIM_VEC_MIN", raising=False)
    scalar = thunk()
    monkeypatch.delenv("REPRO_SIM_SCALAR")
    monkeypatch.setenv("REPRO_SIM_VEC_MIN", "0")
    vectorized = thunk()
    return scalar, vectorized


# ----------------------------------------------------------------------
# golden corpus, both modes
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(corpus.CORPUS))
def test_corpus_entry_bit_identical(name, monkeypatch):
    def thunk():
        run = corpus.run_entry(name)
        return corpus.fingerprint(run), _counters(run), \
            corpus.trace_stream(run)

    (fp_s, ct_s, tr_s), (fp_v, ct_v, tr_v) = _run_both(monkeypatch, thunk)
    assert fp_v == fp_s, (
        f"corpus entry {name!r}: vectorized fingerprint diverged from "
        "scalar — the two fills are no longer bit-identical")
    assert ct_v == ct_s, f"corpus entry {name!r}: counters diverged"
    # order-preserving stream, stronger than the order-insensitive hash
    assert tr_v == tr_s


# ----------------------------------------------------------------------
# conformance matrix, both modes
# ----------------------------------------------------------------------

_MATRIX_CASES = [(op, alg, p, shape)
                 for op, alg in matrix.CASES
                 for p in matrix.P_VALUES
                 for shape in matrix.SHAPES]

if os.environ.get("REPRO_SIM_DIFF_FULL"):
    _DIFF_CASES = _MATRIX_CASES
else:
    # deterministic tier-1 slice: every 6th case covers each operation,
    # algorithm, group size, and shape at least once in ~1/6 the time
    _DIFF_CASES = _MATRIX_CASES[::6]


@pytest.mark.parametrize(
    "op,alg,p,shape", _DIFF_CASES,
    ids=[f"{o}-{a or 'mst'}-p{p}-{s}" for o, a, p, s in _DIFF_CASES])
def test_matrix_case_bit_identical(op, alg, p, shape, monkeypatch):
    g = matrix._group(shape, p)

    def thunk():
        run, _sizes = matrix._run_on_group(op, alg, g)
        blobs = [None if r is None else r.tobytes()
                 for r in run.results]
        return repr(run.time), blobs, _counters(run)

    scalar, vectorized = _run_both(monkeypatch, thunk)
    assert vectorized == scalar, (op, alg, p, shape)


# ----------------------------------------------------------------------
# random flow patterns (hypothesis) and degenerate components
# ----------------------------------------------------------------------

_TOPOLOGIES = [
    LinearArray(8), Mesh2D(3, 4), Mesh2D(4, 4), Torus2D(3, 4),
    Hypercube(4), FullyConnected(8),
]


def _run_pattern(topology, capacity, sends):
    """Concurrent point-to-point pattern; returns exact observables."""
    machine = Machine(topology, UNIT.with_(link_capacity=capacity),
                      trace=True)
    by_src = {}
    by_dst = {}
    for s, d, n in sends:
        by_src.setdefault(s, []).append((d, n))
        by_dst.setdefault(d, []).append(s)

    def prog(env):
        reqs = []
        for d, n in by_src.get(env.rank, []):
            reqs.append(env.isend(d, np.zeros(int(n), dtype=np.uint8)))
        for s in by_dst.get(env.rank, []):
            reqs.append(env.irecv(s))
        if reqs:
            yield env.waitall(*reqs)

    run = machine.run(prog)
    completions = [(r.src, r.dst, repr(r.t_complete))
                   for r in run.trace.completed()]
    return repr(run.time), completions, _counters(run)


@st.composite
def _patterns(draw):
    topo = _TOPOLOGIES[draw(st.integers(0, len(_TOPOLOGIES) - 1))]
    n = topo.nnodes
    raw = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1),
                  st.sampled_from([16, 128, 777, 2048, 30_000])),
        min_size=2, max_size=16))
    seen = set()
    sends = []
    for s, d, nb in raw:
        if s != d and (s, d) not in seen:
            seen.add((s, d))
            sends.append((s, d, nb))
    capacity = draw(st.sampled_from([1.0, 2.0, 4.0]))
    return topo, capacity, sends


@settings(max_examples=30, deadline=None)
@given(pattern=_patterns())
def test_property_vectorized_equals_scalar_fixed_point(pattern):
    """Random concurrent flows: rates, completion order, settle times
    and all counters must be exactly equal in both modes (no approx —
    the vectorized fill is the same IEEE arithmetic re-ordered only
    where re-ordering is value-preserving)."""
    topo, capacity, sends = pattern
    if not sends:
        return
    os.environ["REPRO_SIM_SCALAR"] = "1"
    os.environ.pop("REPRO_SIM_VEC_MIN", None)
    try:
        scalar = _run_pattern(topo, capacity, sends)
    finally:
        del os.environ["REPRO_SIM_SCALAR"]
    os.environ["REPRO_SIM_VEC_MIN"] = "0"
    try:
        vectorized = _run_pattern(topo, capacity, sends)
    finally:
        del os.environ["REPRO_SIM_VEC_MIN"]
    assert vectorized == scalar, (topo, capacity, sends)


def _direct_network(monkeypatch, scalar: bool):
    if scalar:
        monkeypatch.setenv("REPRO_SIM_SCALAR", "1")
        monkeypatch.delenv("REPRO_SIM_VEC_MIN", raising=False)
    else:
        monkeypatch.delenv("REPRO_SIM_SCALAR", raising=False)
        monkeypatch.setenv("REPRO_SIM_VEC_MIN", "0")
    return FluidNetwork(FullyConnected(9), UNIT,
                        schedule=lambda t, cb: None,
                        complete=lambda tok, t: None)


def test_single_flow_component_identical(monkeypatch):
    """A singleton component takes the fast path in both modes — the
    rate must equal the route's min capacity either way."""
    rates = {}
    for mode in ("scalar", "vectorized"):
        net = _direct_network(monkeypatch, scalar=(mode == "scalar"))
        f = net.start_flow(0, 1, 1000.0, 0.0, object())
        rates[mode] = f.rate
    assert rates["vectorized"] == rates["scalar"] == 1.0


def test_zero_capacity_component_identical(monkeypatch):
    """Zero-capacity resources (a channel slowed by an infinite factor)
    must produce identical — zero — rates, not a division blow-up."""
    rates = {}
    for mode in ("scalar", "vectorized"):
        net = _direct_network(monkeypatch, scalar=(mode == "scalar"))
        flows = [net.start_flow(s, 8, 1000.0, 0.0, object())
                 for s in range(4)]
        for s in range(4):
            net.apply_slowdown(s, 8, math.inf, 0.0)  # cap -> 0.0
        rates[mode] = [f.rate for f in flows]
    assert rates["vectorized"] == rates["scalar"]
    assert all(r == 0.0 for r in rates["vectorized"])


def test_shared_bottleneck_exact_shares(monkeypatch):
    """k flows into one ejection port: both modes give exactly cap/k
    (the same IEEE quotient, not an approximation)."""
    for k in (2, 3, 5, 7):
        rates = {}
        for mode in ("scalar", "vectorized"):
            net = _direct_network(monkeypatch, scalar=(mode == "scalar"))
            flows = [net.start_flow(s, 8, 1000.0, 0.0, object())
                     for s in range(k)]
            rates[mode] = [f.rate for f in flows]
        assert rates["vectorized"] == rates["scalar"] == [1.0 / k] * k


def test_threshold_dispatch_is_bit_identical(monkeypatch):
    """The production default (hybrid dispatch at the size threshold)
    must agree with pure-scalar on a mixed pattern — the threshold is
    a perf knob, never a semantics knob."""
    name = "allreduce-auto-mesh4x6"
    monkeypatch.setenv("REPRO_SIM_SCALAR", "1")
    want = corpus.fingerprint(corpus.run_entry(name))
    monkeypatch.delenv("REPRO_SIM_SCALAR")
    for threshold in ("0", "2", "8"):
        monkeypatch.setenv("REPRO_SIM_VEC_MIN", threshold)
        got = corpus.fingerprint(corpus.run_entry(name))
        assert got == want, f"threshold {threshold} changed results"
    monkeypatch.delenv("REPRO_SIM_VEC_MIN")


def test_random_seeded_degenerate_small_components(monkeypatch):
    """Brute seeded sweep of tiny random patterns (including repeated
    (src, dst) resources and staggered capacities via slowdowns) —
    cheap insurance beyond hypothesis shrinking."""
    for seed in range(10):
        rng = random.Random(seed)
        sends = []
        seen = set()
        for _ in range(rng.randint(1, 8)):
            s, d = rng.randrange(9), rng.randrange(9)
            if s != d and (s, d) not in seen:
                seen.add((s, d))
                sends.append((s, d))
        slow = [(u, v, 1.0 + rng.random() * 3)
                for (u, v) in list(seen)[: rng.randint(0, len(seen))]]
        rates = {}
        for mode in ("scalar", "vectorized"):
            net = _direct_network(monkeypatch, scalar=(mode == "scalar"))
            flows = [net.start_flow(s, d, 500.0, 0.0, object())
                     for s, d in sends]
            for u, v, factor in slow:
                net.apply_slowdown(u, v, factor, 0.0)
            rates[mode] = [f.rate for f in flows]
        assert rates["vectorized"] == rates["scalar"], (seed, sends, slow)
