"""Tests for the wraparound mesh (reference [6]'s machine)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.context import CollContext
from repro.core.primitives_long import bucket_collect
from repro.sim import Machine, Mesh2D, Torus2D, UNIT


class TestTorusRouting:
    torus = Torus2D(4, 6)

    def test_row_wrap_single_hop(self):
        assert self.torus.route(5, 0) == [(5, 0)]

    def test_col_wrap_single_hop(self):
        assert self.torus.route(18, 0) == [(18, 0)]

    def test_takes_shorter_way(self):
        # (0,1) -> (0,5): backward around the wrap is 2 hops
        path = self.torus.route(1, 5)
        assert len(path) == 2
        assert path == [(1, 0), (0, 5)]

    def test_routes_are_walks(self):
        for src in range(24):
            for dst in range(24):
                cur = src
                for u, v in self.torus.route(src, dst):
                    assert u == cur
                    cur = v
                assert cur == dst

    def test_route_length_is_torus_manhattan(self):
        t = self.torus
        for src in range(24):
            for dst in range(24):
                sr, sc = t.coords(src)
                dr, dc = t.coords(dst)
                dy = min((dr - sr) % 4, (sr - dr) % 4)
                dx = min((dc - sc) % 6, (sc - dc) % 6)
                assert len(t.route(src, dst)) == dx + dy

    def test_channel_count(self):
        # every node has 4 outgoing channels (wraps included)
        assert len(list(self.torus.channels())) == 4 * 24

    def test_row_col_nodes(self):
        assert self.torus.row_nodes(1) == [6, 7, 8, 9, 10, 11]
        assert self.torus.col_nodes(2) == [2, 8, 14, 20]


class TestTorusPerformance:
    def test_ring_collect_within_row_is_conflict_free(self):
        """On the torus the row ring is physical — the bucket collect's
        wrap message has its own link instead of the reverse channels."""
        t = Torus2D(1, 8)
        machine = Machine(t, UNIT)

        def prog(env):
            ctx = CollContext(env)
            return (yield from bucket_collect(ctx, np.zeros(4)))

        run = machine.run(prog)
        assert run.time == pytest.approx(7 * (1 + 4 * 8))

    def test_torus_not_slower_than_mesh(self):
        """Extra wrap links can only help: the whole-machine collect on
        a torus must cost at most the mesh's."""
        from repro.core import api
        nb = 64

        def prog(env):
            out = yield from api.collect(env, np.zeros(nb))
            return len(out) == nb * env.nranks

        t_mesh = Machine(Mesh2D(4, 4), UNIT).run(prog)
        t_torus = Machine(Torus2D(4, 4), UNIT).run(prog)
        assert all(t_mesh.results) and all(t_torus.results)
        assert t_torus.time <= t_mesh.time * 1.0 + 1e-9

    def test_collectives_correct_on_torus(self):
        from repro.core import api
        machine = Machine(Torus2D(3, 5), UNIT)

        def prog(env):
            v = np.full(30, float(env.rank))
            out = yield from api.allreduce(env, v, "sum")
            return float(out[0])

        run = machine.run(prog)
        assert all(v == sum(range(15)) for v in run.results)
