"""Tests for message tracing (the Figure 1 machinery)."""

import numpy as np
import pytest

from repro.sim import LinearArray, Machine, UNIT
from repro.sim.trace import MessageRecord, Tracer


def traced_run(prog, p=4):
    m = Machine(LinearArray(p), UNIT, trace=True)
    return m.run(prog)


class TestTracer:
    def test_records_full_lifecycle(self):
        def prog(env):
            if env.rank == 0:
                yield env.delay(5)
                yield env.send(1, np.zeros(10, dtype=np.uint8))
            elif env.rank == 1:
                yield env.recv(0)

        run = traced_run(prog)
        (rec,) = run.trace.completed()
        assert rec.src == 0 and rec.dst == 1
        assert rec.nbytes == 10
        assert rec.t_send_post == pytest.approx(5.0)
        assert rec.t_recv_post == pytest.approx(0.0)
        assert rec.t_match == pytest.approx(5.0)
        assert rec.t_complete == pytest.approx(16.0)
        assert rec.duration == pytest.approx(11.0)
        assert rec.wait_time == pytest.approx(5.0)

    def test_between_filters_by_pair(self):
        def prog(env):
            if env.rank == 0:
                yield env.send(1, np.array([1.0]))
                yield env.send(2, np.array([2.0]))
            elif env.rank in (1, 2):
                yield env.recv(0)

        run = traced_run(prog)
        assert len(run.trace.between(0, 1)) == 1
        assert len(run.trace.between(0, 2)) == 1
        assert run.trace.between(1, 0) == []

    def test_total_bytes_and_count(self):
        def prog(env):
            if env.rank == 0:
                yield env.send(1, np.zeros(3, dtype=np.float64))
                yield env.send(1, np.zeros(2, dtype=np.float64))
            elif env.rank == 1:
                yield env.recv(0)
                yield env.recv(0)

        run = traced_run(prog)
        assert run.trace.message_count() == 2
        assert run.trace.total_bytes() == 40

    def test_step_table_groups_by_match_time(self):
        def prog(env):
            # two rounds of disjoint neighbor sends
            if env.rank in (0, 2):
                yield env.send(env.rank + 1, np.zeros(8, dtype=np.uint8))
                yield env.send(env.rank + 1, np.zeros(8, dtype=np.uint8))
            else:
                yield env.recv(env.rank - 1)
                yield env.recv(env.rank - 1)

        run = traced_run(prog)
        steps = run.trace.step_table()
        assert len(steps) == 2
        assert all(len(recs) == 2 for _, recs in steps)

    def test_render_steps_mentions_endpoints(self):
        def prog(env):
            if env.rank == 0:
                yield env.send(3, np.zeros(4, dtype=np.uint8))
            elif env.rank == 3:
                yield env.recv(0)

        run = traced_run(prog)
        text = run.trace.render_steps()
        assert "0->3" in text and "step 1" in text

    def test_marks(self):
        def prog(env):
            yield env.mark(f"hello from {env.rank}")
            yield env.delay(1)

        run = traced_run(prog, p=2)
        assert len(run.trace.marks) == 2
        assert run.trace.marks[0][2] == "hello from 0"

    def test_by_completion_sorted(self):
        def prog(env):
            if env.rank == 0:
                yield env.send(1, np.zeros(100, dtype=np.uint8))
            elif env.rank == 1:
                yield env.recv(0)
            elif env.rank == 2:
                yield env.send(3, np.zeros(10, dtype=np.uint8))
            elif env.rank == 3:
                yield env.recv(2)

        run = traced_run(prog)
        recs = run.trace.by_completion()
        assert (recs[0].src, recs[0].dst) == (2, 3)
        assert (recs[1].src, recs[1].dst) == (0, 1)


class TestStepTableTolerance:
    def _tracer_with_matches(self, times):
        tr = Tracer()
        for i, t in enumerate(times):
            tr.message(MessageRecord(src=0, dst=1, tag=0, nbytes=8.0,
                                     t_send_post=0.0, t_recv_post=0.0,
                                     t_match=t, t_complete=t + 1.0))
        return tr

    def test_float_noise_grouped_into_one_step(self):
        # settle/eta arithmetic leaves ~1e-15 between same-round
        # rendezvous; exact-equality grouping used to split the round.
        t = 100.0
        tr = self._tracer_with_matches([t, t + 1e-13, t + 2e-13])
        steps = tr.step_table()
        assert len(steps) == 1
        assert len(steps[0][1]) == 3

    def test_distinct_rounds_stay_split(self):
        tr = self._tracer_with_matches([1.0, 2.0, 3.0])
        assert len(tr.step_table()) == 3

    def test_relative_tolerance_scales_with_magnitude(self):
        # at t=1e6 a 1e-4 absolute gap is still the same round
        # relatively (1e-10 rel), while at t=1 it is not even close to
        # splitting threshold concerns -- both behave.
        tr = self._tracer_with_matches([1e6, 1e6 + 1e-4])
        assert len(tr.step_table()) == 1
        tr = self._tracer_with_matches([1.0, 1.001])
        assert len(tr.step_table()) == 2

    def test_explicit_quantum_unchanged(self):
        tr = self._tracer_with_matches([0.1, 0.9, 1.1])
        steps = tr.step_table(time_quantum=1.0)
        assert [len(r) for _, r in steps] == [2, 1]


class TestWaitTimeNaN:
    def test_half_posted_is_nan_both_orders(self):
        import math
        a = MessageRecord(src=0, dst=1, tag=0, nbytes=8.0,
                          t_send_post=2.0)
        b = MessageRecord(src=0, dst=1, tag=0, nbytes=8.0,
                          t_recv_post=2.0)
        assert math.isnan(a.wait_time)
        assert math.isnan(b.wait_time)

    def test_fully_posted_is_finite(self):
        m = MessageRecord(src=0, dst=1, tag=0, nbytes=8.0,
                          t_send_post=2.0, t_recv_post=5.0, t_match=5.0,
                          t_complete=9.0)
        assert m.wait_time == 3.0


class TestSpans:
    def test_open_close_records_interval(self):
        tr = Tracer()
        sp = tr.span_open(1.0, rank=2, label="stage", phase="scatter",
                          attrs={"d": 5})
        assert not sp.closed
        tr.span_close(sp, 4.0)
        assert sp.closed and sp.duration == 3.0
        assert tr.spans_of(2) == [sp]
        assert tr.closed_spans() == [sp]

    def test_nesting_depth_per_rank(self):
        tr = Tracer()
        outer = tr.span_open(0.0, 0, "op")
        inner = tr.span_open(1.0, 0, "stage")
        other = tr.span_open(1.0, 1, "op")
        assert outer.depth == 0 and inner.depth == 1
        assert other.depth == 0  # depth is per rank
        tr.span_close(inner, 2.0)
        sibling = tr.span_open(3.0, 0, "stage2")
        assert sibling.depth == 1

    def test_collectives_emit_stage_spans(self):
        from repro.core import api

        def prog(env):
            buf = (np.arange(64, dtype=np.float64)
                   if env.rank == 0 else None)
            yield from api.bcast(env, buf, root=0, total=64,
                                 algorithm="2x2:SSCC")

        run = traced_run(prog, p=4)
        spans = run.trace.closed_spans()
        ops = [s for s in spans if s.phase == "op"]
        assert len(ops) == 4  # one op span per rank
        assert all(s.label == "bcast" for s in ops)
        assert all(s.attrs["strategy"] == "(2x2, SSCC)" for s in ops)
        stages = [s for s in run.trace.spans_of(0) if s.depth == 1]
        assert [s.phase for s in stages] == ["scatter", "scatter",
                                             "collect", "collect"]
        lo = min(s.t_start for s in stages)
        hi = max(s.t_end for s in stages)
        op0 = next(s for s in ops if s.rank == 0)
        assert op0.t_start <= lo and hi <= op0.t_end

    def test_spans_do_not_perturb_results(self):
        # tracing on vs off: identical simulated time (spans are
        # observational only)
        from repro.core import api

        def prog(env):
            vec = np.arange(32, dtype=np.float64)
            out = yield from api.allreduce(env, vec)
            return out

        m = Machine(LinearArray(4), UNIT)
        on = m.run(prog, trace=True)
        off = m.run(prog, trace=False)
        assert on.time == off.time
        assert on.trace.spans and off.trace is None


class TestChromeExport:
    def _run(self):
        from repro.core import api

        def prog(env):
            buf = (np.arange(16, dtype=np.float64)
                   if env.rank == 0 else None)
            yield env.mark("go")
            yield from api.bcast(env, buf, root=0, total=16,
                                 algorithm="short")

        return traced_run(prog, p=4)

    def test_structure(self):
        from repro.sim.trace import chrome_trace
        doc = chrome_trace(self._run().trace)
        evs = doc["traceEvents"]
        phases = {e["ph"] for e in evs}
        assert {"M", "X", "i"} <= phases
        # spans on pid 0, messages on pid 1
        span_evs = [e for e in evs if e["ph"] == "X" and e["pid"] == 0]
        msg_evs = [e for e in evs if e["ph"] == "X" and e["pid"] == 1]
        assert span_evs and msg_evs
        assert all(e["dur"] >= 0 for e in span_evs)
        assert all("nbytes" in e["args"] for e in msg_evs)
        names = {e["args"]["name"] for e in evs
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert names == {"collective stages", "message transfers"}

    def test_timescale_scales_timestamps(self):
        from repro.sim.trace import chrome_trace
        tr = self._run().trace
        a = chrome_trace(tr, timescale=1.0)
        b = chrome_trace(tr, timescale=1000.0)
        xa = [e for e in a["traceEvents"] if e["ph"] == "X"]
        xb = [e for e in b["traceEvents"] if e["ph"] == "X"]
        assert xb[0]["ts"] == xa[0]["ts"] * 1000.0

    def test_write_round_trips_as_json(self, tmp_path):
        import json
        from repro.sim.trace import write_chrome_trace
        path = tmp_path / "out.trace.json"
        write_chrome_trace(self._run().trace, str(path))
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]

    def test_attrs_stringified(self):
        from repro.sim.trace import chrome_trace
        tr = Tracer()
        sp = tr.span_open(0.0, 0, "op", phase="op",
                          attrs={"strategy": (2, 2), "n": 64})
        tr.span_close(sp, 1.0)
        doc = chrome_trace(tr)
        ev = next(e for e in doc["traceEvents"]
                  if e["ph"] == "X" and e["name"] == "op")
        assert ev["args"] == {"strategy": "(2, 2)", "n": "64"}
