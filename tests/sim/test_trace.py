"""Tests for message tracing (the Figure 1 machinery)."""

import numpy as np
import pytest

from repro.sim import LinearArray, Machine, UNIT
from repro.sim.trace import MessageRecord, Tracer


def traced_run(prog, p=4):
    m = Machine(LinearArray(p), UNIT, trace=True)
    return m.run(prog)


class TestTracer:
    def test_records_full_lifecycle(self):
        def prog(env):
            if env.rank == 0:
                yield env.delay(5)
                yield env.send(1, np.zeros(10, dtype=np.uint8))
            elif env.rank == 1:
                yield env.recv(0)

        run = traced_run(prog)
        (rec,) = run.trace.completed()
        assert rec.src == 0 and rec.dst == 1
        assert rec.nbytes == 10
        assert rec.t_send_post == pytest.approx(5.0)
        assert rec.t_recv_post == pytest.approx(0.0)
        assert rec.t_match == pytest.approx(5.0)
        assert rec.t_complete == pytest.approx(16.0)
        assert rec.duration == pytest.approx(11.0)
        assert rec.wait_time == pytest.approx(5.0)

    def test_between_filters_by_pair(self):
        def prog(env):
            if env.rank == 0:
                yield env.send(1, np.array([1.0]))
                yield env.send(2, np.array([2.0]))
            elif env.rank in (1, 2):
                yield env.recv(0)

        run = traced_run(prog)
        assert len(run.trace.between(0, 1)) == 1
        assert len(run.trace.between(0, 2)) == 1
        assert run.trace.between(1, 0) == []

    def test_total_bytes_and_count(self):
        def prog(env):
            if env.rank == 0:
                yield env.send(1, np.zeros(3, dtype=np.float64))
                yield env.send(1, np.zeros(2, dtype=np.float64))
            elif env.rank == 1:
                yield env.recv(0)
                yield env.recv(0)

        run = traced_run(prog)
        assert run.trace.message_count() == 2
        assert run.trace.total_bytes() == 40

    def test_step_table_groups_by_match_time(self):
        def prog(env):
            # two rounds of disjoint neighbor sends
            if env.rank in (0, 2):
                yield env.send(env.rank + 1, np.zeros(8, dtype=np.uint8))
                yield env.send(env.rank + 1, np.zeros(8, dtype=np.uint8))
            else:
                yield env.recv(env.rank - 1)
                yield env.recv(env.rank - 1)

        run = traced_run(prog)
        steps = run.trace.step_table()
        assert len(steps) == 2
        assert all(len(recs) == 2 for _, recs in steps)

    def test_render_steps_mentions_endpoints(self):
        def prog(env):
            if env.rank == 0:
                yield env.send(3, np.zeros(4, dtype=np.uint8))
            elif env.rank == 3:
                yield env.recv(0)

        run = traced_run(prog)
        text = run.trace.render_steps()
        assert "0->3" in text and "step 1" in text

    def test_marks(self):
        def prog(env):
            yield env.mark(f"hello from {env.rank}")
            yield env.delay(1)

        run = traced_run(prog, p=2)
        assert len(run.trace.marks) == 2
        assert run.trace.marks[0][2] == "hello from 0"

    def test_by_completion_sorted(self):
        def prog(env):
            if env.rank == 0:
                yield env.send(1, np.zeros(100, dtype=np.uint8))
            elif env.rank == 1:
                yield env.recv(0)
            elif env.rank == 2:
                yield env.send(3, np.zeros(10, dtype=np.uint8))
            elif env.rank == 3:
                yield env.recv(2)

        run = traced_run(prog)
        recs = run.trace.by_completion()
        assert (recs[0].src, recs[0].dst) == (2, 3)
        assert (recs[1].src, recs[1].dst) == (0, 1)
