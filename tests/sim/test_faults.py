"""Fault-injection subsystem tests (docs/robustness.md).

Covers the tentpole behaviours end to end: degraded-topology rerouting,
permanent/transient link faults with message-layer retry, node crashes
with typed diagnosis and survivor completion, slowdown/jitter
determinism, strict passivity of the empty schedule, ULFM-style
``Communicator.shrink()``, degraded-link strategy pricing, the
simulated-time watchdog, and dead-letter accounting.
"""

import math

import numpy as np
import pytest

from repro.core import api, validation
from repro.core.communicator import Communicator
from repro.sim import (DeadlockError, FaultDiagnosis, FaultSchedule,
                       LinearArray, LinkFault, LinkSlowdown, Machine,
                       Mesh2D, NodeCrash, PARAGON, Ring, Torus2D, UNIT)

from .spmd_corpus import canonical_results, run_entry


def _send_prog(src, dst, n=1000):
    def prog(env):
        if env.rank == src:
            yield env.send(dst, np.arange(float(n)))
            return "sent"
        if env.rank == dst:
            data = yield env.recv(src)
            return float(data.sum())
        return None
    return prog


_CHECKSUM = sum(range(1000))


# ----------------------------------------------------------------------
# schedule validation & serialization
# ----------------------------------------------------------------------

class TestSchedule:
    def test_empty_schedule_properties(self):
        fs = FaultSchedule()
        assert fs.is_empty
        assert fs.crashed_nodes() == frozenset()
        assert fs.pricing_beta_multiplier() == 1.0
        assert fs.describe() == "empty schedule"

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkFault(t=-1.0, u=0, v=1)
        with pytest.raises(ValueError):
            LinkFault(t=0.0, u=0, v=1, duration=0.0)
        with pytest.raises(ValueError):
            LinkSlowdown(t=0.0, u=0, v=1, factor=0.5)
        with pytest.raises(ValueError):
            FaultSchedule(jitter=-1.0)
        with pytest.raises(ValueError):
            FaultSchedule(deadline=0.0)

    def test_roundtrip_serialization(self):
        fs = FaultSchedule(
            events=(LinkFault(t=1.0, u=0, v=1, duration=5.0),
                    LinkSlowdown(t=2.0, u=3, v=4, factor=2.5),
                    NodeCrash(t=3.0, node=7)),
            jitter=0.25, seed=99, max_retries=3, backoff=0.125,
            deadline=1e6)
        assert FaultSchedule.from_dict(fs.to_dict()) == fs

    def test_roundtrip_infinite_duration(self):
        fs = FaultSchedule(events=(LinkFault(t=0.0, u=1, v=2),))
        back = FaultSchedule.from_dict(fs.to_dict())
        assert math.isinf(back.events[0].duration)
        assert math.isinf(back.deadline)


# ----------------------------------------------------------------------
# degraded routing
# ----------------------------------------------------------------------

class TestDegradedRouting:
    def test_mesh_alt_route_is_yx(self):
        mesh = Mesh2D(3, 3)
        # 0 -> 4: XY goes 0-1-4; YX goes 0-3-4
        assert mesh.route(0, 4) == [(0, 1), (1, 4)]
        assert mesh.alt_route(0, 4) == [(0, 3), (3, 4)]

    def test_route_avoiding_prefers_primary(self):
        mesh = Mesh2D(3, 3)
        assert mesh.route_avoiding(0, 4, set()) == mesh.route(0, 4)

    def test_route_avoiding_falls_back_to_alt(self):
        mesh = Mesh2D(3, 3)
        failed = {(0, 1), (1, 0)}
        assert mesh.route_avoiding(0, 4, failed) == mesh.alt_route(0, 4)

    def test_route_avoiding_bfs_when_both_blocked(self):
        mesh = Mesh2D(3, 3)
        # Block both XY (0-1-4) and YX (0-3-4) first hops.
        failed = {(0, 1), (1, 0), (0, 3), (3, 0)}
        route = mesh.route_avoiding(0, 4, failed)
        assert route is None or route  # must not be the blocked routes
        # 0 is fully disconnected (only neighbors are 1 and 3)
        assert route is None

    def test_bfs_route_around_partial_cut(self):
        mesh = Mesh2D(3, 3)
        # Cut 1-4 and 3-4: both two-hop routes die, BFS finds a longer way.
        failed = {(1, 4), (4, 1), (3, 4), (4, 3)}
        route = mesh.route_avoiding(0, 4, failed)
        assert route is not None
        assert not any(ch in failed for ch in route)
        # walk continuity: route really leads 0 -> 4
        assert route[0][0] == 0 and route[-1][1] == 4
        for a, b in zip(route, route[1:]):
            assert a[1] == b[0]

    def test_bfs_is_deterministic(self):
        mesh = Mesh2D(4, 4)
        failed = {(1, 2), (2, 1)}
        r1 = mesh.bfs_route(0, 15, failed)
        r2 = mesh.bfs_route(0, 15, failed)
        assert r1 == r2

    def test_ring_alt_route_goes_the_long_way(self):
        ring = Ring(6)
        assert ring.route(0, 2) == [(0, 1), (1, 2)]
        assert ring.alt_route(0, 2) == \
            [(0, 5), (5, 4), (4, 3), (3, 2)]

    def test_torus_alt_route_is_yx(self):
        torus = Torus2D(3, 3)
        primary = torus.route(0, 4)
        alt = torus.alt_route(0, 4)
        assert alt != primary
        assert alt[0][0] == 0 and alt[-1][1] == 4


# ----------------------------------------------------------------------
# link faults
# ----------------------------------------------------------------------

class TestLinkFaults:
    def test_permanent_fault_reroutes(self):
        """XY route dies at t=0; the message takes YX and still lands."""
        m = Machine(Mesh2D(3, 3))
        clean = m.run(_send_prog(0, 8))
        fs = FaultSchedule(events=(LinkFault(t=0.0, u=0, v=1),))
        run = m.run(_send_prog(0, 8), faults=fs)
        assert run.results[8] == clean.results[8] == _CHECKSUM
        assert run.fault_report.injected[0][1] == "link-fault"

    def test_fault_mid_transfer_retries(self):
        """A link failing mid-worm kills the flow; the message layer
        retransmits over the degraded route, bit-correct."""
        m = Machine(Mesh2D(3, 3), UNIT)
        clean = m.run(_send_prog(0, 8))
        # UNIT alpha=1, beta=1: the 8000B transfer spans [1, 8001].
        fs = FaultSchedule(events=(LinkFault(t=100.0, u=2, v=5),))
        run = m.run(_send_prog(0, 8), faults=fs)
        assert run.results[8] == clean.results[8]
        assert run.fault_report.retries >= 1
        assert run.time > clean.time  # the retry cost is visible

    def test_transient_fault_heals(self):
        """With every route from 0 cut, retries back off until the link
        heals, then the transfer goes through."""
        m = Machine(LinearArray(3), UNIT)
        # only one path on a linear array: 0-1-2
        fs = FaultSchedule(
            events=(LinkFault(t=100.0, u=0, v=1, duration=2000.0),),
            max_retries=12)
        run = m.run(_send_prog(0, 2), faults=fs)
        assert run.results[2] == _CHECKSUM
        assert run.fault_report.retries >= 1

    def test_permanent_cut_dead_letters_and_diagnoses(self):
        """A permanent cut with no alternative route exhausts retries;
        the run raises a FaultDiagnosis naming the fault and the dead
        letter — never a silent hang."""
        m = Machine(LinearArray(3), UNIT)
        fs = FaultSchedule(events=(LinkFault(t=100.0, u=0, v=1),),
                           max_retries=3)
        with pytest.raises(FaultDiagnosis) as exc:
            m.run(_send_prog(0, 2), faults=fs)
        diag = exc.value
        assert diag.injected[0][1] == "link-fault"
        assert len(diag.dead_letters) == 1
        dl = diag.dead_letters[0]
        assert (dl.src, dl.dst) == (0, 2)
        assert "link 0<->1 failed" in str(diag)
        assert "dead letter" in str(diag)

    def test_asymmetric_fault_only_kills_one_direction(self):
        m = Machine(LinearArray(2), UNIT)

        def prog(env):
            # 0 -> 1 uses (0,1); 1 -> 0 uses (1,0)
            if env.rank == 0:
                yield env.send(1, np.arange(100.0))
                data = yield env.recv(1)
                return float(data.sum())
            data = yield env.recv(0)
            yield env.send(0, data * 2.0)
            return "ok"

        fs = FaultSchedule(
            events=(LinkFault(t=0.0, u=1, v=0, symmetric=False),),
            max_retries=0, deadline=1e9)
        # the forward message still flows; the reply dead-letters
        with pytest.raises(FaultDiagnosis) as exc:
            m.run(prog, faults=fs)
        assert exc.value.dead_letters[0].src == 1


# ----------------------------------------------------------------------
# node crashes
# ----------------------------------------------------------------------

class TestNodeCrash:
    def test_crash_before_recv_diagnoses_sender(self):
        m = Machine(Mesh2D(3, 3))
        fs = FaultSchedule(events=(NodeCrash(t=0.0, node=8),))
        with pytest.raises(FaultDiagnosis) as exc:
            m.run(_send_prog(0, 8), faults=fs)
        diag = exc.value
        assert diag.crashed == (8,)
        assert any(kind == "send" and peer == 8
                   for (_, kind, peer, _, _) in diag.blocked)
        assert "(crashed)" in str(diag)

    def test_crash_mid_transfer_dead_letters(self):
        m = Machine(LinearArray(2), UNIT)
        # transfer of 8000B spans [1, 8001]; crash the receiver at 50
        fs = FaultSchedule(events=(NodeCrash(t=50.0, node=1),))
        with pytest.raises(FaultDiagnosis) as exc:
            m.run(_send_prog(0, 1, n=1000), faults=fs)
        assert any("crashed mid-transfer" in dl.reason
                   for dl in exc.value.dead_letters)

    def test_survivors_complete_without_the_crashed_rank(self):
        """Ranks that never talk to the dead node finish normally."""
        m = Machine(LinearArray(4), UNIT)
        fs = FaultSchedule(events=(NodeCrash(t=0.0, node=3),))

        def prog(env):
            if env.rank == 0:
                yield env.send(1, np.arange(10.0))
                return "sent"
            if env.rank == 1:
                data = yield env.recv(0)
                return float(data.sum())
            return None  # ranks 2, 3 idle

        run = m.run(prog, faults=fs)
        assert run.results[1] == 45.0
        assert run.results[3] is None
        assert run.fault_report.crashed == (3,)

    def test_env_alive_reflects_crash(self):
        m = Machine(LinearArray(3), UNIT)
        fs = FaultSchedule(events=(NodeCrash(t=5.0, node=2),))

        def prog(env):
            before = env.alive(2)
            yield env.delay(10.0)
            return (before, env.alive(2))

        run = m.run(prog, faults=fs)
        assert run.results[0] == (True, False)


# ----------------------------------------------------------------------
# delay-only faults: slowdown and jitter
# ----------------------------------------------------------------------

class TestDelayOnlyFaults:
    def test_slowdown_changes_time_not_results(self):
        m = Machine(Mesh2D(3, 3))
        clean = m.run(_send_prog(0, 8))
        fs = FaultSchedule(
            events=(LinkSlowdown(t=0.0, u=0, v=1, factor=4.0),))
        run = m.run(_send_prog(0, 8), faults=fs)
        assert run.results[8] == clean.results[8]
        assert run.time > clean.time

    def test_transient_slowdown_restores(self):
        m = Machine(LinearArray(2), UNIT)
        clean = m.run(_send_prog(0, 1))
        fs = FaultSchedule(
            events=(LinkSlowdown(t=0.0, u=0, v=1, factor=10.0,
                                 duration=50.0),))
        run = m.run(_send_prog(0, 1), faults=fs)
        assert run.results[1] == clean.results[1]
        # slowed for 50s then full speed: strictly between the extremes
        assert clean.time < run.time < clean.time * 10

    def test_jitter_is_deterministic_per_seed(self):
        m = Machine(Mesh2D(3, 3))
        fs = FaultSchedule(jitter=0.5, seed=1234)
        a = m.run(_send_prog(0, 8), faults=fs)
        b = m.run(_send_prog(0, 8), faults=fs)
        assert a.time == b.time
        assert a.results == b.results

    def test_different_seeds_differ(self):
        m = Machine(Mesh2D(3, 3))
        t = {m.run(_send_prog(0, 8),
                   faults=FaultSchedule(jitter=0.5, seed=s)).time
             for s in range(5)}
        assert len(t) > 1  # at least two seeds produce distinct times

    def test_jitter_preserves_collective_payloads(self):
        """An auto-dispatched allreduce under heavy jitter returns the
        oracle result on every rank."""
        m = Machine(Mesh2D(3, 4), PARAGON)

        def prog(env):
            vec = np.arange(60.0) + env.rank
            out = yield from api.allreduce(env, vec)
            return out

        fs = FaultSchedule(jitter=PARAGON.alpha * 3, seed=7)
        run = m.run(prog, faults=fs)
        want = validation.ref_allreduce(
            [np.arange(60.0) + r for r in range(12)])
        for r in range(12):
            np.testing.assert_array_equal(run.results[r], want[r])


# ----------------------------------------------------------------------
# strict passivity of the empty schedule
# ----------------------------------------------------------------------

class TestEmptySchedulePassivity:
    def test_goldens_unchanged_with_empty_schedule(self):
        """A representative golden-corpus slice must fingerprint
        bit-identically with an empty FaultSchedule threaded through
        (the full 29/29 sweep runs in CI via --empty-faults)."""
        from .spmd_corpus import fingerprint
        for name in ("allreduce-auto-p12", "bcast-auto-mesh4x6",
                     "ptp-churn-ring16"):
            base = fingerprint(run_entry(name))
            with_faults = fingerprint(run_entry(name,
                                                faults=FaultSchedule()))
            assert base == with_faults, name

    def test_no_fault_state_for_empty_schedule(self):
        m = Machine(LinearArray(2), UNIT)
        run = m.run(_send_prog(0, 1), faults=FaultSchedule())
        assert run.fault_report is None


# ----------------------------------------------------------------------
# shrink + degraded pricing
# ----------------------------------------------------------------------

class TestShrink:
    def test_shrink_excludes_scheduled_crashes(self):
        m = Machine(Mesh2D(3, 4))
        crash_t = 5.0
        fs = FaultSchedule(events=(NodeCrash(t=crash_t, node=5),),
                           deadline=1e8)

        def prog(env):
            comm = Communicator.world(env)
            yield env.delay(2 * crash_t)
            sub = comm.shrink()
            vec = np.full(24, float(env.rank))
            out = yield from sub.allreduce(vec)
            return float(out[0])

        run = m.run(prog, faults=fs)
        want = float(sum(r for r in range(12) if r != 5))
        for r in range(12):
            if r == 5:
                assert run.results[r] is None
            else:
                assert run.results[r] == want

    def test_sequential_crashes_shrink_twice(self):
        """shrink, crash again, shrink again: the perfect failure
        detector is time-independent, so both shrinks agree on the full
        crash set and the second is a no-op on the first's survivors."""
        m = Machine(LinearArray(8), UNIT)
        fs = FaultSchedule(events=(NodeCrash(t=10.0, node=2),
                                   NodeCrash(t=30.0, node=5)),
                           deadline=1e9)

        def prog(env):
            comm = Communicator.world(env)
            yield env.delay(20.0)          # after crash 1, before crash 2
            first = comm.shrink()
            yield env.delay(20.0)          # after crash 2
            second = first.shrink()
            vec = np.full(6, float(env.rank))
            out = yield from second.allreduce(vec)
            return (first.group, second.group, float(out[0]))

        run = m.run(prog, faults=fs)
        survivors = tuple(r for r in range(8) if r not in (2, 5))
        want = float(sum(survivors))
        for r in range(8):
            if r in (2, 5):
                assert run.results[r] is None
            else:
                g1, g2, total = run.results[r]
                # crashed_nodes() is schedule-wide: the first shrink
                # already excludes the *future* crash of node 5
                assert g1 == survivors
                assert g2 == survivors
                assert total == want

    def test_shrink_inside_degraded_route(self):
        """A crash plus a live link slowdown: survivors shrink and the
        collective completes correctly over the degraded route."""
        m = Machine(LinearArray(6), UNIT)
        fs = FaultSchedule(
            events=(NodeCrash(t=1.0, node=5),
                    LinkSlowdown(t=0.0, u=1, v=2, factor=8.0)),
            deadline=1e9)

        def prog(env):
            comm = Communicator.world(env)
            yield env.delay(5.0)
            sub = comm.shrink()
            vec = np.full(4, float(env.rank))
            out = yield from sub.allreduce(vec)
            return float(out[0])

        run = m.run(prog, faults=fs)
        want = float(sum(range(5)))
        for r in range(5):
            assert run.results[r] == want
        assert run.results[5] is None

    def test_shrink_without_faults_is_identity(self):
        m = Machine(LinearArray(4), UNIT)

        def prog(env):
            comm = Communicator.world(env)
            sub = comm.shrink()
            yield env.delay(0.0)
            return sub.group

        run = m.run(prog)
        assert run.results[0] == (0, 1, 2, 3)

    def test_shrink_raises_when_all_dead(self):
        m = Machine(LinearArray(2), UNIT)
        fs = FaultSchedule(events=(NodeCrash(t=1e9, node=0),
                                   NodeCrash(t=1e9, node=1)))

        def prog(env):
            comm = Communicator.world(env)
            with pytest.raises(RuntimeError, match="no surviving"):
                comm.shrink()
            yield env.delay(0.0)
            return "checked"

        # crashes scheduled far in the future: programs finish first,
        # but shrink's perfect failure detector already knows.
        run = m.run(prog, faults=fs)
        assert run.results == ["checked", "checked"]


class TestDegradedPricing:
    def _crossover(self, op="bcast", p=16):
        """Find a vector length where the UNIT-model choice differs from
        the 8x-degraded-beta choice (selection re-ranks), if any."""
        from repro.core.selection import selector_for
        sel_clean = selector_for(UNIT, itemsize=8)
        sel_slow = selector_for(UNIT.with_(beta=UNIT.beta * 8.0),
                                itemsize=8)
        for n in (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096):
            a = sel_clean.best(op, p, n).strategy
            b = sel_slow.best(op, p, n).strategy
            if str(a) != str(b):
                return n, a, b
        return None

    def test_degraded_beta_rerankings_exist(self):
        """A degraded beta genuinely flips the chosen strategy somewhere
        (else the pricing hook would be untestable)."""
        assert self._crossover() is not None

    def test_auto_dispatch_prices_with_degraded_beta(self):
        """With a declared slowdown, every rank resolves the degraded
        choice — and because pricing reads the schedule (not the clock),
        ranks resolving at different times agree (no hang)."""
        found = self._crossover()
        assert found is not None
        n, clean_strat, slow_strat = found
        m = Machine(LinearArray(16), UNIT, trace=True)
        fs = FaultSchedule(
            events=(LinkSlowdown(t=0.0, u=0, v=1, factor=8.0),))

        def prog(env):
            buf = np.arange(float(n)) if env.rank == 0 else None
            out = yield from api.bcast(env, buf, root=0, total=n)
            return out

        run = m.run(prog, faults=fs)
        for r in range(16):
            np.testing.assert_array_equal(run.results[r],
                                          np.arange(float(n)))
        ops = run.trace.op_spans()
        assert ops, "bcast must open an op span"
        strategies = {s.attrs.get("strategy") for s in ops if s.attrs}
        assert strategies == {str(slow_strat)}
        mult = {s.attrs.get("selector_beta_multiplier")
                for s in ops if s.attrs}
        assert mult == {8.0}


# ----------------------------------------------------------------------
# watchdog
# ----------------------------------------------------------------------

class TestWatchdog:
    def test_deadline_converts_hang_to_diagnosis(self):
        """An undiagnosable-by-drain hang (livelock of retries would
        take ages) is cut at the simulated deadline."""
        m = Machine(LinearArray(3), UNIT)
        # huge retry budget: without the watchdog the heap drains only
        # after ~2^30 backoff; the deadline cuts much earlier.
        fs = FaultSchedule(events=(LinkFault(t=100.0, u=0, v=1),),
                           max_retries=30, deadline=50_000.0)
        with pytest.raises(FaultDiagnosis) as exc:
            m.run(_send_prog(0, 2), faults=fs)
        assert exc.value.watchdog
        assert "watchdog" in str(exc.value)
        assert "deadline" in str(exc.value)

    def test_deadline_not_triggered_by_healthy_run(self):
        m = Machine(LinearArray(3), UNIT)
        fs = FaultSchedule(deadline=1e9)
        run = m.run(_send_prog(0, 2), faults=fs)
        assert run.results[2] == _CHECKSUM


# ----------------------------------------------------------------------
# diagnosis content
# ----------------------------------------------------------------------

class TestDiagnosis:
    def test_to_dict_is_json_ready(self):
        import json
        m = Machine(LinearArray(3), UNIT)
        fs = FaultSchedule(events=(NodeCrash(t=0.0, node=2),))
        with pytest.raises(FaultDiagnosis) as exc:
            m.run(_send_prog(0, 2), faults=fs)
        blob = json.dumps(exc.value.to_dict())
        assert "node 2 crashed" in blob

    def test_op_span_attribution(self):
        """When tracing, the diagnosis names the collective op span each
        blocked rank was inside."""
        m = Machine(LinearArray(4), UNIT, trace=True)
        fs = FaultSchedule(events=(NodeCrash(t=0.0, node=3),))

        def prog(env):
            vec = np.arange(16.0)
            out = yield from api.allreduce(env, vec)
            return out

        with pytest.raises(FaultDiagnosis) as exc:
            m.run(prog, faults=fs)
        assert exc.value.op_spans  # at least one blocked rank attributed
        assert any("allreduce" in label
                   for label in exc.value.op_spans.values())
        assert "inside op span" in str(exc.value)

    def test_plain_deadlock_still_deadlock_error(self):
        """No injected faults => DeadlockError, not FaultDiagnosis (a
        genuine program bug must not masquerade as a fault)."""
        m = Machine(LinearArray(2), UNIT)
        fs = FaultSchedule(deadline=1e9)  # installed but nothing fires

        def prog(env):
            if env.rank == 0:
                yield env.recv(1)

        with pytest.raises(DeadlockError) as exc:
            m.run(prog, faults=fs)
        assert not isinstance(exc.value, FaultDiagnosis)


# ----------------------------------------------------------------------
# fault records on the tracer
# ----------------------------------------------------------------------

class TestChaosHarness:
    """Spot checks of the seeded chaos harness (benchmarks/chaos)."""

    def test_case_is_reproducible(self):
        from benchmarks.chaos.cases import run_case
        a = run_case("mesh4x6", "allreduce", "crash", 101)
        b = run_case("mesh4x6", "allreduce", "crash", 101)
        assert a == b

    def test_baseline_case_is_passive(self):
        from benchmarks.chaos.cases import run_case
        rec = run_case("linear12", "bcast", "baseline", 101)
        assert rec["outcome"] == "ok"
        assert rec["time"] == rec["t_clean"]

    def test_crash_shrink_case_completes(self):
        from benchmarks.chaos.cases import run_case
        rec = run_case("linear12", "reduce_scatter", "crash-shrink", 202)
        assert rec["outcome"] == "ok"

    def test_evaluate_flags_violations(self):
        from benchmarks.chaos.run import evaluate
        records = [
            {"id": "a", "profile": "jitter", "outcome": "ok"},
            {"id": "b", "profile": "jitter", "outcome": "diagnosed"},
            {"id": "c", "profile": "crash", "outcome": "diagnosed"},
            {"id": "d", "profile": "crash",
             "outcome": "silent-corruption"},
        ]
        summary = evaluate(records)
        assert not summary["passed"]
        assert not summary["gates"]["zero_silent_corruption"]
        assert summary["gates"]["zero_undiagnosed_hangs"]
        # b: delay-only must complete; d: corruption is always fatal
        assert summary["violations"] == ["b", "d"]

    def test_committed_report_passes_its_gates(self):
        import json
        import os
        path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            os.pardir, os.pardir, "CHAOS_report.json")
        with open(path) as f:
            report = json.load(f)
        assert report["grid"] == "full"
        assert report["cases"] >= 200
        assert report["passed"]
        assert all(report["gates"].values())


class TestFaultTraceRecords:
    def test_faults_appear_in_trace_and_chrome_export(self):
        from repro.sim import chrome_trace
        m = Machine(Mesh2D(3, 3), UNIT, trace=True)
        fs = FaultSchedule(
            events=(LinkSlowdown(t=0.0, u=0, v=1, factor=2.0),))
        run = m.run(_send_prog(0, 8), faults=fs)
        kinds = [f.kind for f in run.trace.faults]
        assert "link-slowdown" in kinds
        blob = chrome_trace(run.trace)
        assert any(e.get("cat") == "fault" for e in blob["traceEvents"])
