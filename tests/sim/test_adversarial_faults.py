"""Byzantine-model adversarial faults: engine semantics + serialization.

Covers the three adversarial event types (ByzantineRank /
WithholdingRank / MisroutingRank): corruption is deterministic and
surfaced as Tamper records, withholding starves receivers into a
*typed* diagnosis, misrouting redirects to a wrong-but-valid peer,
cadence fields gate per-send application, rank-program exceptions under
injection wrap into FaultDiagnosis, and the strict ``from_dict``
round-trips reject unknown keys by name (mirroring
``MachineParams.from_dict``).
"""

import random

import numpy as np
import pytest

from repro.core import api
from repro.sim import (ByzantineRank, FaultDiagnosis, FaultSchedule,
                       LinearArray, Machine, MisroutingRank, Ring,
                       WithholdingRank, preset)
from repro.sim.faults import (AdversaryState, LinkSlowdown, Tamper,
                              corrupt_payload)

PARAGON = preset("paragon")


def _allreduce_prog(n=8):
    def prog(env):
        vec = np.arange(float(n)) + env.rank
        out = yield from api.allreduce(env, vec)
        return out
    return prog


class TestByzantine:
    def test_corrupts_results_and_records_tampers(self):
        m = Machine(Ring(4), PARAGON)
        clean = m.run(_allreduce_prog())
        fs = FaultSchedule(events=(ByzantineRank(rank=1),), seed=7)
        run = m.run(_allreduce_prog(), faults=fs)
        assert run.fault_report is not None
        tampered = run.fault_report.tampered
        assert tampered and all(isinstance(t, Tamper) for t in tampered)
        assert all(t.kind == "byzantine-rank" for t in tampered)
        assert any(not np.array_equal(a, b)
                   for a, b in zip(clean.results, run.results))

    def test_corruption_is_deterministic(self):
        m = Machine(Ring(4), PARAGON)
        fs = FaultSchedule(events=(ByzantineRank(rank=1),), seed=7)
        a = m.run(_allreduce_prog(), faults=fs)
        b = m.run(_allreduce_prog(), faults=fs)
        for x, y in zip(a.results, b.results):
            assert np.array_equal(x, y)
        assert [t.describe() for t in a.fault_report.tampered] == \
            [t.describe() for t in b.fault_report.tampered]

    def test_different_seed_different_corruption(self):
        m = Machine(Ring(4), PARAGON)
        runs = []
        for seed in (7, 8):
            fs = FaultSchedule(events=(ByzantineRank(rank=1),),
                               seed=seed)
            runs.append(m.run(_allreduce_prog(n=64), faults=fs))
        assert any(not np.array_equal(a, b)
                   for a, b in zip(runs[0].results, runs[1].results))


class TestWithholding:
    def test_starved_receiver_gets_typed_diagnosis(self):
        m = Machine(Ring(4), PARAGON)
        fs = FaultSchedule(events=(WithholdingRank(rank=2),))
        with pytest.raises(FaultDiagnosis) as exc_info:
            m.run(_allreduce_prog(), faults=fs)
        diag = exc_info.value
        assert diag.tampered
        assert all(t.kind == "withholding-rank" for t in diag.tampered)
        assert any(k == "withholding-rank" for _, k, _ in diag.injected)

    def test_sender_side_completes(self):
        # the withholding rank's own send handle completes: only the
        # *receiver* starves (that is what makes the fault silent)
        m = Machine(LinearArray(2), PARAGON)
        fs = FaultSchedule(events=(WithholdingRank(rank=0),))

        def prog(env):
            if env.rank == 0:
                yield env.send(1, np.ones(4))
                return "sent"
            h = env.irecv(0)
            yield env.delay(1.0)
            return ("pending", h.done)

        run = m.run(prog, faults=fs)
        assert run.results[0] == "sent"
        assert run.results[1] == ("pending", False)


class TestMisrouting:
    def test_misrouting_raises_typed_diagnosis(self):
        m = Machine(Ring(4), PARAGON)
        fs = FaultSchedule(events=(MisroutingRank(rank=1),))
        with pytest.raises(FaultDiagnosis) as exc_info:
            m.run(_allreduce_prog(), faults=fs)
        assert any(t.kind == "misrouting-rank"
                   for t in exc_info.value.tampered)

    def test_wrong_peer_is_valid_and_different(self):
        for nranks in (3, 4, 7, 16):
            for src in range(nranks):
                for dst in range(nranks):
                    if dst == src:
                        continue
                    wrong = AdversaryState.wrong_peer(src, dst, nranks)
                    assert 0 <= wrong < nranks
                    assert wrong != dst
                    assert wrong != src


class TestRankExceptionWrapping:
    def test_program_exception_under_injection_is_diagnosed(self):
        # a victim rank blowing up on corrupted data must surface as a
        # typed diagnosis, not an anonymous ValueError
        m = Machine(LinearArray(2), PARAGON)
        fs = FaultSchedule(events=(ByzantineRank(rank=0),), seed=3)

        def prog(env):
            data = np.arange(8.0)
            if env.rank == 0:
                yield env.send(1, data)
                return None
            got = (yield env.recv(0))[0]
            if not np.array_equal(got, data):
                raise ValueError("checksum mismatch")
            return got

        with pytest.raises(FaultDiagnosis) as exc_info:
            m.run(prog, faults=fs)
        assert isinstance(exc_info.value.__cause__, ValueError)
        assert exc_info.value.tampered

    def test_program_exception_without_injection_propagates(self):
        m = Machine(LinearArray(2), PARAGON)
        fs = FaultSchedule(events=(ByzantineRank(rank=0, start=99),),
                           seed=3)

        def prog(env):
            yield env.delay(0.0)
            raise KeyError("plain bug")

        # adversary never fires (start=99): nothing injected, so the
        # program's own bug must NOT be misattributed to faults
        with pytest.raises(KeyError):
            m.run(prog, faults=fs)


class TestCadence:
    def _acts(self, event, sends=6):
        fs = FaultSchedule(events=(event,), seed=1)
        adv = AdversaryState(fs)
        hits = []
        for k in range(sends):
            got = adv.act(event.rank, 1, 0, np.ones(4), 0.0, 4)
            hits.append(got is not None)
        return hits

    def test_every_and_start(self):
        assert self._acts(ByzantineRank(rank=0)) == [True] * 6
        assert self._acts(ByzantineRank(rank=0, every=2)) == \
            [True, False, True, False, True, False]
        assert self._acts(ByzantineRank(rank=0, start=2)) == \
            [False, False, True, True, True, True]
        assert self._acts(ByzantineRank(rank=0, every=3, start=1)) == \
            [False, True, False, False, True, False]

    def test_other_ranks_unaffected(self):
        fs = FaultSchedule(events=(ByzantineRank(rank=0),), seed=1)
        adv = AdversaryState(fs)
        assert adv.act(1, 0, 0, np.ones(4), 0.0, 4) is None

    def test_time_gate(self):
        ev = ByzantineRank(rank=0, t=5.0)
        fs = FaultSchedule(events=(ev,), seed=1)
        adv = AdversaryState(fs)
        assert adv.act(0, 1, 0, np.ones(4), 4.9, 4) is None
        assert adv.act(0, 1, 0, np.ones(4), 5.1, 4) is not None


class TestCorruptPayload:
    def test_flips_exactly_one_element(self):
        rng = random.Random("t")
        data = np.arange(16.0)
        out, detail = corrupt_payload(data, rng)
        assert out is not None and detail
        assert np.array_equal(data, np.arange(16.0))  # input untouched
        assert (out != data).sum() == 1

    def test_non_numeric_payloads_skipped(self):
        rng = random.Random("t")
        assert corrupt_payload("hello", rng) == (None, None)
        assert corrupt_payload(np.array([], dtype=float), rng) == \
            (None, None)

    def test_integer_dtypes_supported(self):
        rng = random.Random("t")
        out, _ = corrupt_payload(np.arange(8, dtype=np.int32), rng)
        assert out is not None
        assert out.dtype == np.int32


class TestPassivity:
    def test_no_adversary_state_without_adversarial_events(self):
        fs = FaultSchedule(events=(LinkSlowdown(t=0.0, u=0, v=1,
                                                factor=2.0),))
        assert not fs.has_adversaries
        assert fs.adversarial_ranks() == frozenset()
        m = Machine(LinearArray(2), PARAGON)
        clean = m.run(_allreduce_prog())
        run = m.run(_allreduce_prog(), faults=fs)
        assert run.fault_report.tampered == ()
        for a, b in zip(clean.results, run.results):
            assert np.array_equal(a, b)  # slowdown shifts time, not data

    def test_adversarial_schedule_is_not_empty(self):
        fs = FaultSchedule(events=(ByzantineRank(rank=0),))
        assert not fs.is_empty
        assert fs.has_adversaries
        assert fs.adversarial_ranks() == frozenset({0})


class TestSerialization:
    @pytest.mark.parametrize("event", [
        ByzantineRank(rank=3, t=1.5, every=2, start=1),
        WithholdingRank(rank=0),
        MisroutingRank(rank=2, every=3),
    ])
    def test_adversarial_round_trip(self, event):
        fs = FaultSchedule(events=(event,), seed=11, deadline=100.0)
        assert FaultSchedule.from_dict(fs.to_dict()) == fs

    def test_unknown_schedule_field_rejected_by_name(self):
        with pytest.raises(ValueError, match=r"bogus"):
            FaultSchedule.from_dict({"jitter": 0.0, "bogus": 1})

    def test_unknown_event_kind_lists_known_kinds(self):
        with pytest.raises(ValueError, match=r"byzantine-rank"):
            FaultSchedule.from_dict(
                {"events": [{"kind": "gremlin", "rank": 0}]})

    def test_unknown_event_field_rejected_by_name(self):
        with pytest.raises(ValueError, match=r"wobble.*expected a subset"):
            FaultSchedule.from_dict(
                {"events": [{"kind": "byzantine-rank", "rank": 0,
                             "wobble": 2}]})

    @pytest.mark.parametrize("kwargs", [
        {"rank": -1}, {"rank": 0, "every": 0}, {"rank": 0, "start": -1},
    ])
    def test_invalid_adversary_fields_raise(self, kwargs):
        for cls in (ByzantineRank, WithholdingRank, MisroutingRank):
            with pytest.raises(ValueError):
                cls(**kwargs)

    def test_describe_mentions_cadence(self):
        ev = ByzantineRank(rank=4, every=2, start=1)
        text = ev.describe()
        assert "rank 4" in text
        assert "every 2 sends" in text
