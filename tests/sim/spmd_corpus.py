"""Frozen corpus of SPMD programs for the golden-equivalence gate.

The simulator's performance work (route caching, resource interning,
incremental max-min bookkeeping, event-churn reduction) must never change
a *simulated* result: elapsed time, message counts, payload semantics and
the full per-message trace all have to stay bit-identical.  This module
defines a frozen set of representative programs — one per collective
x algorithm family, plus group-shaped and adversarial point-to-point
patterns — together with a canonical serialization of a run.

``tests/sim/goldens/corpus_v1.json`` stores, for every corpus entry:

* ``time``      — ``repr()`` of the elapsed simulated time (bit-exact),
* ``messages``  — total point-to-point message count,
* ``trace_sha256`` — hash of the canonical trace serialization,
* ``result_sha256`` — hash of the canonical per-rank results.

Regenerate (only when an *intentional* model change is made, never for a
performance refactor) with::

    PYTHONPATH=src python -m tests.sim.spmd_corpus --write

The golden test (:mod:`tests.sim.test_golden_equivalence`) replays the
corpus and compares against the stored values.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.core import api
from repro.core.partition import partition_sizes
from repro.sim import (Hypercube, LinearArray, Machine, Mesh2D, Ring,
                      Torus2D, preset)

GOLDEN_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "goldens", "corpus_v1.json")

# ----------------------------------------------------------------------
# deterministic payloads
# ----------------------------------------------------------------------


def _vec(rank: int, n: int) -> np.ndarray:
    """Deterministic, rank-dependent test vector (no RNG state)."""
    base = np.arange(n, dtype=np.float64)
    return base * (rank % 7 + 1) + rank


# ----------------------------------------------------------------------
# program builders
# ----------------------------------------------------------------------


def _bcast(alg: str, n: int, group=None):
    def prog(env):
        g = list(group) if group is not None else list(range(env.nranks))
        if env.rank not in g:
            return None
        root_node = g[0]
        buf = _vec(1, n) if env.rank == root_node else None
        out = yield from api.bcast(env, buf, root=0, group=group,
                                   total=n, algorithm=alg)
        return out
    return prog


def _reduce(alg: str, n: int):
    def prog(env):
        out = yield from api.reduce(env, _vec(env.rank, n), op="sum",
                                    root=0, algorithm=alg)
        return out
    return prog


def _allreduce(alg: str, n: int):
    def prog(env):
        out = yield from api.allreduce(env, _vec(env.rank, n), op="sum",
                                       algorithm=alg)
        return out
    return prog


def _collect(alg: str, n: int, group=None):
    def prog(env):
        g = list(group) if group is not None else list(range(env.nranks))
        if env.rank not in g:
            return None
        p = len(g)
        sizes = partition_sizes(n, p)
        me = g.index(env.rank)
        blk = _vec(env.rank, sizes[me])
        out = yield from api.collect(env, blk, sizes=sizes, group=group,
                                     algorithm=alg)
        return out
    return prog


def _reduce_scatter(alg: str, n: int):
    def prog(env):
        out = yield from api.reduce_scatter(env, _vec(env.rank, n),
                                            op="sum", algorithm=alg)
        return out
    return prog


def _scatter(n: int):
    def prog(env):
        buf = _vec(3, n) if env.rank == 0 else None
        out = yield from api.scatter(env, buf, root=0, total=n)
        return out
    return prog


def _gather(n: int):
    def prog(env):
        sizes = partition_sizes(n, env.nranks)
        blk = _vec(env.rank, sizes[env.rank])
        out = yield from api.gather(env, blk, root=0, sizes=sizes)
        return out
    return prog


def _barrier():
    def prog(env):
        yield from api.barrier(env)
        return env.now
    return prog


def _ptp_pattern(seed: int, nflows: int, scale: int):
    """Adversarial concurrent point-to-point traffic: many overlapping
    flows of mixed sizes, so rates change repeatedly mid-flight."""
    def prog(env):
        rng = random.Random(seed)
        sends: List[Tuple[int, int, int]] = []
        pairs = set()
        for _ in range(nflows):
            s = rng.randrange(env.nranks)
            d = rng.randrange(env.nranks)
            if s == d or (s, d) in pairs:
                continue
            pairs.add((s, d))
            sends.append((s, d, rng.choice([8, 64, 555, 4096]) * scale))
        reqs = []
        for s, d, nb in sends:
            if env.rank == s:
                reqs.append(env.isend(d, np.zeros(nb, dtype=np.uint8)))
        for s, d, nb in sends:
            if env.rank == d:
                reqs.append(env.irecv(s))
        if reqs:
            got = yield env.waitall(*reqs)
            del got
        return env.now
    return prog


# ----------------------------------------------------------------------
# the frozen corpus
# ----------------------------------------------------------------------

def _topo(kind: str, *dims):
    return {"linear": LinearArray, "ring": Ring, "mesh": Mesh2D,
            "torus": Torus2D, "cube": Hypercube}[kind](*dims)


#: name -> (topology spec, params preset, program factory)
#: Frozen: do not reorder or change entries; add new ones at the end
#: with a version suffix if coverage must grow.
CORPUS: Dict[str, Tuple[tuple, str, Callable]] = {}


def _add(name, topo, params, prog):
    assert name not in CORPUS
    CORPUS[name] = (topo, params, prog)


# one per collective x algorithm family on the paper's linear array
for _alg in ("short", "long", "auto"):
    _add(f"bcast-{_alg}-p12", ("linear", 12), "unit", _bcast(_alg, 960))
    _add(f"reduce-{_alg}-p12", ("linear", 12), "unit", _reduce(_alg, 960))
    _add(f"allreduce-{_alg}-p12", ("linear", 12), "unit",
         _allreduce(_alg, 960))
    _add(f"collect-{_alg}-p12", ("linear", 12), "unit", _collect(_alg, 960))
    _add(f"reduce_scatter-{_alg}-p12", ("linear", 12), "unit",
         _reduce_scatter(_alg, 960))

_add("scatter-p12", ("linear", 12), "unit", _scatter(960))
_add("gather-p12", ("linear", 12), "unit", _gather(960))
_add("barrier-p12", ("linear", 12), "unit", _barrier())

# mesh / torus / hypercube machines under the Paragon model
_add("bcast-auto-mesh4x6", ("mesh", 4, 6), "paragon", _bcast("auto", 3072))
_add("collect-auto-mesh4x6", ("mesh", 4, 6), "paragon",
     _collect("auto", 3072))
_add("reduce_scatter-auto-mesh4x6", ("mesh", 4, 6), "paragon",
     _reduce_scatter("auto", 3072))
_add("allreduce-auto-mesh4x6", ("mesh", 4, 6), "paragon",
     _allreduce("auto", 3072))
_add("collect-long-torus3x4", ("torus", 3, 4), "unit", _collect("long", 600))
_add("allreduce-auto-cube4", ("cube", 4), "paragon", _allreduce("auto", 2048))

# group-shaped collectives (section 9): strided line, random subset
_add("collect-long-strided", ("mesh", 4, 6), "unit",
     _collect("long", 600, group=list(range(0, 24, 3))))
_add("bcast-auto-subset", ("mesh", 4, 6), "unit",
     _bcast("auto", 512, group=[17, 3, 11, 5, 22, 8, 0]))

# adversarial point-to-point traffic: heavy rate churn on shared links
_add("ptp-churn-ring16", ("ring", 16), "unit", _ptp_pattern(11, 40, 1))
_add("ptp-churn-mesh5x5", ("mesh", 5, 5), "paragon",
     _ptp_pattern(23, 60, 16))
_add("ptp-churn-cap2", ("linear", 10), "unit", _ptp_pattern(7, 30, 4))


# ----------------------------------------------------------------------
# canonical serialization
# ----------------------------------------------------------------------


def trace_stream(run) -> str:
    """Bit-exact, order-preserving serialization of the message trace.

    Sensitive to the engine's event ordering for same-time events; used
    by the determinism test (two runs must produce identical streams).
    """
    lines = []
    for m in run.trace.messages:
        lines.append(",".join((
            str(m.src), str(m.dst), str(m.tag), repr(m.nbytes),
            repr(m.t_send_post), repr(m.t_recv_post),
            repr(m.t_match), repr(m.t_complete))))
    for t, rank, label in run.trace.marks:
        lines.append(f"mark,{repr(t)},{rank},{label}")
    return "\n".join(lines)


def canonical_trace(run) -> str:
    """Canonically *sorted* trace serialization for the golden gate.

    Every timestamp must match bit-for-bit, but records carrying
    identical times may appear in any order: the pre-optimization engine
    recorded same-time messages in id()-dependent (hence run-dependent)
    order, so the cross-implementation golden cannot pin the stream
    order itself.  :func:`trace_stream` pins it for single-build
    determinism instead.
    """
    return "\n".join(sorted(trace_stream(run).splitlines()))


def canonical_results(run) -> str:
    """Bit-exact serialization of per-rank return values."""
    parts = []
    for i, r in enumerate(run.results):
        if r is None:
            parts.append(f"{i}:None")
        elif isinstance(r, np.ndarray):
            parts.append(f"{i}:{r.dtype}:{r.shape}:"
                         + hashlib.sha256(np.ascontiguousarray(r).tobytes())
                         .hexdigest())
        else:
            parts.append(f"{i}:{r!r}")
    return "\n".join(parts)


def run_entry(name: str, metrics: bool = False, audit: bool = False,
              faults=None):
    """Execute one corpus program with tracing on; returns the RunResult.

    ``metrics`` additionally turns on channel-metrics collection — the
    fingerprints must not change (instrumentation neutrality, see
    docs/observability.md and the CI job of the same name).  ``audit``
    turns metrics on AND forces the full model-audit readback
    (``run.audit`` + ``run.channel_metrics``) before fingerprinting:
    prediction capture and the audit layer must also be invisible to
    simulated results.  ``faults`` threads a
    :class:`~repro.sim.faults.FaultSchedule` through the run — with an
    *empty* schedule the fingerprints must not change either (the fault
    layer is strictly passive, see docs/robustness.md), and with
    delay-only schedules (jitter/slowdown) ``result_sha256`` must not
    change (the property test in tests/sim/test_fault_properties.py).
    """
    topo_spec, params_name, prog = CORPUS[name]
    machine = Machine(_topo(*topo_spec), preset(params_name), trace=True)
    run = machine.run(prog, metrics=metrics or audit, faults=faults)
    if audit:
        assert run.audit is not None
        assert run.channel_metrics is not None
    return run


def fingerprint(run) -> Dict[str, object]:
    trace = canonical_trace(run)
    results = canonical_results(run)
    return {
        "time": repr(run.time),
        "messages": run.messages,
        "trace_sha256": hashlib.sha256(trace.encode()).hexdigest(),
        "result_sha256": hashlib.sha256(results.encode()).hexdigest(),
    }


def generate_goldens(metrics: bool = False, audit: bool = False,
                     faults=None) -> Dict[str, Dict[str, object]]:
    return {name: fingerprint(run_entry(name, metrics=metrics, audit=audit,
                                        faults=faults))
            for name in CORPUS}


def main(argv=None) -> int:
    import argparse
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--write", action="store_true",
                    help="(re)generate the golden file")
    ap.add_argument("--check", action="store_true",
                    help="compare a fresh run against the golden file")
    ap.add_argument("--metrics", action="store_true",
                    help="run with channel metrics enabled (the goldens "
                         "must still match: instrumentation neutrality)")
    ap.add_argument("--audit", action="store_true",
                    help="additionally force the model-audit readback "
                         "(run.audit) before fingerprinting; the goldens "
                         "must still match")
    ap.add_argument("--empty-faults", action="store_true",
                    help="thread an empty FaultSchedule through every run; "
                         "the goldens must still match (the fault layer is "
                         "strictly passive, docs/robustness.md)")
    args = ap.parse_args(argv)
    faults = None
    if args.empty_faults:
        from repro.sim import FaultSchedule
        faults = FaultSchedule()
    goldens = generate_goldens(metrics=args.metrics, audit=args.audit,
                               faults=faults)
    if args.write:
        os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
        with open(GOLDEN_PATH, "w") as f:
            json.dump(goldens, f, indent=1, sort_keys=True)
            f.write("\n")
        print(f"wrote {len(goldens)} goldens to {GOLDEN_PATH}")
        return 0
    with open(GOLDEN_PATH) as f:
        want = json.load(f)
    bad = [n for n in want
           if goldens.get(n) != want[n]] + [n for n in goldens
                                            if n not in want]
    for n in bad:
        print(f"MISMATCH {n}:\n  want {want.get(n)}\n  got  {goldens.get(n)}")
    print(f"{len(goldens) - len(bad)}/{len(goldens)} entries match")
    return 1 if bad else 0


if __name__ == "__main__":
    raise SystemExit(main())
