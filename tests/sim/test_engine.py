"""Tests for the discrete-event engine: matching, blocking semantics,
nonblocking requests, deadlock detection, payload sizing."""

import numpy as np
import pytest

from repro.sim import (DeadlockError, LinearArray, Machine, UNIT,
                       payload_nbytes)
from repro.sim.params import MachineParams


class TestPayloadNbytes:
    def test_ndarray(self):
        assert payload_nbytes(np.zeros(10, dtype=np.float64)) == 80
        assert payload_nbytes(np.zeros(10, dtype=np.int32)) == 40

    def test_scalar_types(self):
        assert payload_nbytes(np.float64(1.0)) == 8
        assert payload_nbytes(3) == 8
        assert payload_nbytes(2.5) == 8

    def test_bytes_and_str(self):
        assert payload_nbytes(b"abcd") == 4
        assert payload_nbytes("hi") == 2

    def test_none_is_zero(self):
        assert payload_nbytes(None) == 0

    def test_sequences_sum(self):
        assert payload_nbytes([np.zeros(4, np.float64), b"xy"]) == 34

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError, match="nbytes"):
            payload_nbytes(object())


class TestMatching:
    def test_fifo_per_pair(self):
        """Two messages between the same pair arrive in program order."""
        m = Machine(LinearArray(2), UNIT)

        def prog(env):
            if env.rank == 0:
                yield env.send(1, np.array([1.0]))
                yield env.send(1, np.array([2.0]))
            else:
                a = yield env.recv(0)
                b = yield env.recv(0)
                return float(a[0]), float(b[0])

        assert m.run(prog).results[1] == (1.0, 2.0)

    def test_tags_isolate_streams(self):
        """Receives by tag pick the right message even out of order.

        (The sender posts both nonblocking: with rendezvous semantics a
        blocking send of the first message while the receiver waits on
        the second would deadlock — as in MPI.)"""
        m = Machine(LinearArray(2), UNIT)

        def prog(env):
            if env.rank == 0:
                s1 = env.isend(1, np.array([1.0]), tag=7)
                s2 = env.isend(1, np.array([2.0]), tag=9)
                yield env.waitall(s1, s2)
            else:
                b = yield env.recv(0, tag=9)
                a = yield env.recv(0, tag=7)
                return float(a[0]), float(b[0])

        assert m.run(prog).results[1] == (1.0, 2.0)

    def test_reversed_blocking_tag_order_deadlocks(self):
        """Rendezvous semantics: the MPI-unsafe ordering really hangs."""
        m = Machine(LinearArray(2), UNIT)

        def prog(env):
            if env.rank == 0:
                yield env.send(1, np.array([1.0]), tag=7)
                yield env.send(1, np.array([2.0]), tag=9)
            else:
                yield env.recv(0, tag=9)
                yield env.recv(0, tag=7)

        with pytest.raises(DeadlockError):
            m.run(prog)

    def test_rendezvous_waits_for_late_receiver(self):
        m = Machine(LinearArray(2), UNIT)

        def prog(env):
            if env.rank == 0:
                yield env.send(1, np.zeros(10, dtype=np.uint8))
            else:
                yield env.delay(100)
                yield env.recv(0)

        # transfer starts at t=100: 100 + 1 + 10
        assert m.run(prog).time == pytest.approx(111.0)

    def test_rendezvous_waits_for_late_sender(self):
        m = Machine(LinearArray(2), UNIT)

        def prog(env):
            if env.rank == 0:
                yield env.delay(50)
                yield env.send(1, np.zeros(10, dtype=np.uint8))
            else:
                yield env.recv(0)

        assert m.run(prog).time == pytest.approx(61.0)

    def test_self_send_is_free(self):
        m = Machine(LinearArray(2), UNIT)

        def prog(env):
            if env.rank == 0:
                s = env.isend(0, np.array([5.0]))
                r = env.irecv(0)
                yield env.waitall(s, r)
                return float(r.data[0])
            return None
            yield  # pragma: no cover

        run = m.run(prog)
        assert run.results[0] == 5.0
        assert run.time == pytest.approx(0.0)


class TestNonblocking:
    def test_isend_irecv_overlap(self):
        """A rank can have a send and a receive in flight at once."""
        m = Machine(LinearArray(3), UNIT)

        def prog(env):
            n = 100
            reqs = []
            if env.rank == 1:
                reqs.append(env.isend(2, np.zeros(n, dtype=np.uint8)))
                reqs.append(env.irecv(0))
            elif env.rank == 0:
                reqs.append(env.isend(1, np.zeros(n, dtype=np.uint8)))
            else:
                reqs.append(env.irecv(1))
            yield env.waitall(*reqs)

        # both transfers overlap: 1 + 100
        assert m.run(prog).time == pytest.approx(101.0)

    def test_waitall_returns_payloads_in_order(self):
        m = Machine(LinearArray(3), UNIT)

        def prog(env):
            if env.rank == 0:
                r1 = env.irecv(1)
                r2 = env.irecv(2)
                vals = yield env.waitall(r1, r2)
                return [float(v[0]) for v in vals]
            yield env.send(0, np.array([float(env.rank)]))

        assert m.run(prog).results[0] == [1.0, 2.0]

    def test_single_recv_waitall_returns_payload_directly(self):
        m = Machine(LinearArray(2), UNIT)

        def prog(env):
            if env.rank == 0:
                data = yield env.waitall(env.irecv(1))
                return float(data[0])
            yield env.send(0, np.array([9.0]))

        assert m.run(prog).results[0] == 9.0

    def test_yielding_bare_handle_blocks_on_it(self):
        m = Machine(LinearArray(2), UNIT)

        def prog(env):
            if env.rank == 0:
                yield env.isend(1, np.zeros(4, dtype=np.uint8))
            else:
                yield env.irecv(0)

        assert m.run(prog).time == pytest.approx(5.0)


class TestComputeAndOverhead:
    def test_compute_charges_gamma(self):
        m = Machine(LinearArray(1), UNIT.with_(gamma=0.5))

        def prog(env):
            yield env.compute(10)

        assert m.run(prog).time == pytest.approx(5.0)

    def test_overhead_charges_sw_overhead(self):
        m = Machine(LinearArray(1), UNIT.with_(sw_overhead=2.0))

        def prog(env):
            yield env.overhead(3)

        assert m.run(prog).time == pytest.approx(6.0)

    def test_negative_delay_rejected(self):
        m = Machine(LinearArray(1), UNIT)

        def prog(env):
            yield env.delay(-1.0)

        with pytest.raises(ValueError):
            m.run(prog)


class TestErrors:
    def test_unmatched_recv_deadlocks_with_diagnostics(self):
        m = Machine(LinearArray(2), UNIT)

        def prog(env):
            if env.rank == 0:
                yield env.recv(1)

        with pytest.raises(DeadlockError, match="rank 0"):
            m.run(prog)

    def test_send_without_recv_deadlocks(self):
        m = Machine(LinearArray(2), UNIT)

        def prog(env):
            if env.rank == 0:
                yield env.send(1, np.array([1.0]))

        with pytest.raises(DeadlockError):
            m.run(prog)

    def test_yielding_garbage_raises_typeerror(self):
        m = Machine(LinearArray(1), UNIT)

        def prog(env):
            yield 42

        with pytest.raises(TypeError, match="not a request"):
            m.run(prog)

    def test_plain_function_rejected(self):
        m = Machine(LinearArray(1), UNIT)

        def not_a_generator(env):
            return 1

        with pytest.raises(TypeError, match="generator"):
            m.run(not_a_generator)

    def test_send_to_invalid_rank_rejected(self):
        m = Machine(LinearArray(2), UNIT)

        def prog(env):
            if env.rank == 0:
                yield env.send(5, np.array([1.0]))

        with pytest.raises(ValueError):
            m.run(prog)


class TestDeterminism:
    def test_identical_runs_identical_times(self):
        m = Machine(LinearArray(8), UNIT)

        def prog(env):
            right = (env.rank + 1) % 8
            left = (env.rank - 1) % 8
            for _ in range(5):
                s = env.isend(right, np.zeros(64, dtype=np.uint8))
                r = env.irecv(left)
                yield env.waitall(s, r)

        t1 = m.run(prog).time
        t2 = m.run(prog).time
        assert t1 == t2
