"""Tests for machine parameter sets."""

import math

import pytest

from repro.sim import (DELTA, IPSC860, PARAGON, PRESETS, UNIT,
                       MachineParams, preset)


class TestMachineParams:
    def test_unit_model(self):
        assert UNIT.alpha == 1.0
        assert UNIT.beta == 1.0
        assert UNIT.gamma == 1.0
        assert UNIT.sw_overhead == 0.0
        assert UNIT.link_capacity == 1.0

    def test_transfer_time_is_alpha_plus_n_beta(self):
        p = MachineParams(alpha=2.0, beta=0.5)
        assert p.transfer_time(10) == 2.0 + 5.0

    def test_combine_time_is_n_gamma(self):
        p = MachineParams(gamma=0.25)
        assert p.combine_time(8) == 2.0

    def test_injection_bandwidth_is_reciprocal_beta(self):
        p = MachineParams(beta=1.0 / 35e6)
        assert p.injection_bandwidth == pytest.approx(35e6)

    def test_zero_beta_means_infinite_bandwidth(self):
        p = MachineParams(beta=0.0)
        assert p.injection_bandwidth == math.inf

    def test_channel_bandwidth_scales_with_link_capacity(self):
        p = MachineParams(beta=0.1, link_capacity=4.0)
        assert p.channel_bandwidth == pytest.approx(40.0)

    def test_with_replaces_fields(self):
        p = UNIT.with_(alpha=3.0)
        assert p.alpha == 3.0
        assert p.beta == UNIT.beta
        assert UNIT.alpha == 1.0  # original untouched

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            MachineParams(alpha=-1.0)

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError):
            MachineParams(sw_overhead=-1e-6)

    def test_zero_link_capacity_rejected(self):
        with pytest.raises(ValueError):
            MachineParams(link_capacity=0.0)

    def test_frozen(self):
        with pytest.raises(Exception):
            UNIT.alpha = 2.0


class TestPresets:
    def test_all_presets_resolvable(self):
        for name in PRESETS:
            assert preset(name) is PRESETS[name]

    def test_preset_case_insensitive(self):
        assert preset("Paragon") is PARAGON

    def test_unknown_preset_raises(self):
        with pytest.raises(KeyError, match="unknown machine preset"):
            preset("cray-t3d")

    def test_paragon_has_excess_link_bandwidth(self):
        # section 7.1: each link accommodates several messages
        assert PARAGON.link_capacity > 1.0
        assert DELTA.link_capacity == 1.0

    def test_presets_are_physically_sane(self):
        for p in (PARAGON, DELTA, IPSC860):
            assert 0 < p.alpha < 1e-2          # sub-10ms latency
            assert 1e5 < p.injection_bandwidth < 1e9
            assert p.gamma > 0
