"""Property test: delay-only fault schedules never change *results*.

Satellite (c) of the robustness issue (docs/robustness.md).  Jitter and
link slowdowns perturb *when* things happen, never *what* arrives: every
payload a collective delivers must be bit-identical to the clean run.
The oracle is the committed golden corpus (``result_sha256`` in
``tests/sim/goldens/corpus_v1.json``), so any silent corruption the
fault layer could introduce — a retry duplicating data, a reroute
dropping a block, a jittered match pairing the wrong ``(source, tag)``
FIFO entry — fails against a fingerprint that predates the fault layer.

Two properties, split by what the schedule may touch:

* **jitter-only** schedules leave strategy selection alone, so *every*
  corpus entry (auto dispatch included) must reproduce its golden
  ``result_sha256`` exactly;
* **slowdown** schedules additionally re-rank ``algorithm="auto"``
  dispatch by design (degraded-link pricing, ISSUE tentpole part 2), so
  the bit-identical claim is asserted on entries with a pinned
  algorithm or pure data-movement semantics, where no re-rank can
  change the combine order.
"""

import hashlib
import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import FaultSchedule, LinkSlowdown, preset

from .spmd_corpus import (CORPUS, GOLDEN_PATH, _topo, canonical_results,
                          run_entry)

with open(GOLDEN_PATH) as f:
    _GOLDEN = json.load(f)


def _result_hash(run) -> str:
    return hashlib.sha256(canonical_results(run).encode()).hexdigest()


#: Slice of the corpus exercised under jitter: one entry per collective
#: family plus a group-shaped dispatch.  The ``ptp-churn-*`` and
#: ``barrier`` entries are excluded on purpose — their programs *return*
#: ``env.now``, a timing, which delay-only schedules change by
#: definition; the property is about delivered payloads.
JITTER_ENTRIES = (
    "bcast-auto-p12",
    "reduce-short-p12",
    "allreduce-auto-mesh4x6",
    "collect-long-torus3x4",
    "reduce_scatter-auto-p12",
    "scatter-p12",
    "gather-p12",
    "bcast-auto-subset",
)

#: Entries safe under slowdown: pinned algorithm (no auto re-rank) or
#: data-movement-only collectives (any schedule is bit-equivalent).
SLOWDOWN_ENTRIES = (
    "bcast-long-p12",
    "reduce-long-p12",
    "allreduce-short-p12",
    "collect-auto-mesh4x6",
    "reduce_scatter-long-p12",
)


class TestDelayOnlyInvariance:
    @settings(max_examples=15, deadline=None)
    @given(name=st.sampled_from(JITTER_ENTRIES),
           jitter_scale=st.floats(min_value=0.1, max_value=5.0),
           seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_jitter_never_changes_results(self, name, jitter_scale, seed):
        params_name = CORPUS[name][1]
        alpha = preset(params_name).alpha
        fs = FaultSchedule(jitter=alpha * jitter_scale, seed=seed)
        run = run_entry(name, faults=fs)
        assert _result_hash(run) == _GOLDEN[name]["result_sha256"], name

    @settings(max_examples=15, deadline=None)
    @given(name=st.sampled_from(SLOWDOWN_ENTRIES),
           link_index=st.integers(min_value=0, max_value=10**9),
           factor=st.floats(min_value=1.0, max_value=8.0),
           start_scale=st.floats(min_value=0.0, max_value=2.0),
           transient=st.booleans(),
           seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_slowdown_never_changes_results(self, name, link_index,
                                            factor, start_scale,
                                            transient, seed):
        topo_spec, params_name, _ = CORPUS[name]
        params = preset(params_name)
        chans = sorted(set(_topo(*topo_spec).channels()))
        u, v = chans[link_index % len(chans)]
        t_ref = float(_GOLDEN[name]["time"])  # clean-run wall clock
        ev = LinkSlowdown(
            t=t_ref * start_scale, u=u, v=v, factor=factor,
            duration=t_ref if transient else float("inf"))
        fs = FaultSchedule(events=(ev,), jitter=params.alpha * 0.5,
                           seed=seed)
        run = run_entry(name, faults=fs)
        assert _result_hash(run) == _GOLDEN[name]["result_sha256"], name

    def test_slowed_auto_reduction_matches_oracle(self):
        """Auto entries excluded from the bit-identity claim still must
        be *numerically correct*: a slowdown that re-ranks the allreduce
        schedule yields the reference reduction under the re-ranked
        combine order."""
        import numpy as np

        from repro.core import api, validation
        from repro.sim import Machine, Mesh2D

        p, n = 12, 3072
        m = Machine(Mesh2D(3, 4), preset("paragon"))

        def prog(env):
            vec = np.arange(float(n)) * (env.rank % 7 + 1) + env.rank
            out = yield from api.allreduce(env, vec)
            return out

        fs = FaultSchedule(
            events=(LinkSlowdown(t=0.0, u=0, v=1, factor=6.0),))
        run = m.run(prog, faults=fs)
        want = validation.ref_allreduce(
            [np.arange(float(n)) * (r % 7 + 1) + r for r in range(p)])
        for r in range(p):
            np.testing.assert_allclose(run.results[r], want[r],
                                       rtol=1e-12)
