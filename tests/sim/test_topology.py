"""Tests for interconnect topologies and wormhole routes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (FullyConnected, Hypercube, LinearArray, Mesh2D, Ring,
                       route_length)


def route_is_walk(topology, src, dst):
    """Every route must be a connected walk from src to dst."""
    path = topology.route(src, dst)
    if src == dst:
        return path == []
    cur = src
    for u, v in path:
        assert u == cur, f"route breaks at {u} (expected {cur})"
        cur = v
    assert cur == dst
    return True


class TestLinearArray:
    def test_route_right(self):
        t = LinearArray(5)
        assert t.route(1, 4) == [(1, 2), (2, 3), (3, 4)]

    def test_route_left_uses_reverse_channels(self):
        t = LinearArray(5)
        assert t.route(3, 1) == [(3, 2), (2, 1)]

    def test_self_route_empty(self):
        assert LinearArray(4).route(2, 2) == []

    def test_channel_count(self):
        # p-1 links, two directed channels each
        assert len(list(LinearArray(7).channels())) == 12

    def test_opposite_directions_disjoint(self):
        t = LinearArray(6)
        fwd = set(t.route(0, 5))
        bwd = set(t.route(5, 0))
        assert not (fwd & bwd)

    def test_needs_at_least_one_node(self):
        with pytest.raises(ValueError):
            LinearArray(0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            LinearArray(3).route(0, 3)


class TestRing:
    def test_wraps_shorter_way(self):
        t = Ring(6)
        assert t.route(5, 0) == [(5, 0)]
        assert t.route(0, 5) == [(0, 5)]

    def test_tie_goes_clockwise(self):
        t = Ring(4)
        assert t.route(0, 2) == [(0, 1), (1, 2)]

    def test_route_lengths_at_most_half(self):
        t = Ring(9)
        for s in range(9):
            for d in range(9):
                assert route_length(t, s, d) <= 9 // 2 + 1


class TestMesh2D:
    def test_coords_roundtrip(self):
        m = Mesh2D(4, 8)
        for node in range(32):
            r, c = m.coords(node)
            assert m.node_at(r, c) == node

    def test_xy_routing_row_first(self):
        m = Mesh2D(3, 4)
        # (0,0) -> (2,2): along row 0 to column 2, then down column 2
        path = m.route(0, 10)
        assert path == [(0, 1), (1, 2), (2, 6), (6, 10)]

    def test_row_routes_stay_in_row(self):
        m = Mesh2D(4, 8)
        path = m.route(8, 15)  # both in row 1
        for u, v in path:
            assert u // 8 == 1 and v // 8 == 1

    def test_col_routes_stay_in_col(self):
        m = Mesh2D(4, 8)
        path = m.route(3, 27)  # both in column 3
        for u, v in path:
            assert u % 8 == 3 and v % 8 == 3

    def test_row_and_col_nodes(self):
        m = Mesh2D(3, 4)
        assert m.row_nodes(1) == [4, 5, 6, 7]
        assert m.col_nodes(2) == [2, 6, 10]

    def test_channel_count(self):
        m = Mesh2D(3, 4)
        # horizontal: 3 rows * 3 links * 2; vertical: 2 * 4 * 2
        assert len(list(m.channels())) == 18 + 16

    def test_distinct_rows_disjoint_channels(self):
        m = Mesh2D(4, 8)
        row1 = {ch for c in range(7) for ch in m.route(8 + c, 8 + c + 1)}
        row2 = {ch for c in range(7) for ch in m.route(16 + c, 16 + c + 1)}
        assert not (row1 & row2)

    @given(st.integers(2, 6), st.integers(2, 6),
           st.integers(0, 35), st.integers(0, 35))
    @settings(max_examples=60, deadline=None)
    def test_routes_are_walks(self, r, c, a, b):
        m = Mesh2D(r, c)
        a %= m.nnodes
        b %= m.nnodes
        route_is_walk(m, a, b)

    def test_route_length_is_manhattan(self):
        m = Mesh2D(5, 7)
        for s in (0, 9, 34):
            for d in (0, 17, 33):
                sr, sc = m.coords(s)
                dr, dc = m.coords(d)
                assert route_length(m, s, d) == abs(sr - dr) + abs(sc - dc)


class TestHypercube:
    def test_sizes(self):
        assert Hypercube(0).nnodes == 1
        assert Hypercube(5).nnodes == 32

    def test_ecube_route_fixes_low_dims_first(self):
        h = Hypercube(3)
        assert h.route(0, 7) == [(0, 1), (1, 3), (3, 7)]

    def test_route_length_is_hamming_distance(self):
        h = Hypercube(4)
        for s in range(16):
            for d in range(16):
                assert route_length(h, s, d) == bin(s ^ d).count("1")

    def test_channel_count(self):
        # d * 2^d directed channels
        assert len(list(Hypercube(3).channels())) == 3 * 8

    def test_too_large_rejected(self):
        with pytest.raises(ValueError):
            Hypercube(21)


class TestFullyConnected:
    def test_single_hop_routes(self):
        t = FullyConnected(5)
        assert t.route(1, 3) == [(1, 3)]

    def test_no_shared_channels(self):
        t = FullyConnected(4)
        routes = [tuple(t.route(a, b)) for a in range(4) for b in range(4)
                  if a != b]
        assert len(set(routes)) == len(routes)
