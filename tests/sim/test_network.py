"""Tests for the fluid-flow network: the section 2 sharing semantics.

These tests pin the simulator to the paper's model: conflict-free
messages run at full injection bandwidth; messages sharing a channel
split it max-min fairly; the Paragon's excess link capacity lets several
messages coexist penalty-free.
"""

import heapq
import itertools
import random

import numpy as np
import pytest

from repro.sim import (FullyConnected, LinearArray, Machine, Mesh2D,
                       MachineParams, UNIT)
from repro.sim.network import _EPS_BYTES, Flow, FluidNetwork


def timed_sends(machine, sends, nbytes):
    """Run a program where each (src, dst) in ``sends`` transfers
    ``nbytes`` bytes starting at t=0; returns elapsed time."""
    by_src = {}
    by_dst = {}
    for s, d in sends:
        by_src.setdefault(s, []).append(d)
        by_dst.setdefault(d, []).append(s)

    def prog(env):
        reqs = []
        for d in by_src.get(env.rank, []):
            reqs.append(env.isend(d, np.zeros(nbytes, dtype=np.uint8)))
        for s in by_dst.get(env.rank, []):
            reqs.append(env.irecv(s))
        if reqs:
            yield env.waitall(*reqs)

    return machine.run(prog).time


class TestConflictFree:
    def test_single_transfer_costs_alpha_plus_n_beta(self):
        m = Machine(LinearArray(4), UNIT)
        assert timed_sends(m, [(0, 3)], 100) == pytest.approx(101.0)

    def test_disjoint_transfers_do_not_interact(self):
        m = Machine(LinearArray(6), UNIT)
        t = timed_sends(m, [(0, 1), (2, 3), (4, 5)], 50)
        assert t == pytest.approx(51.0)

    def test_opposite_directions_full_speed(self):
        # forward and backward traffic use independent channels
        m = Machine(LinearArray(4), UNIT)
        t = timed_sends(m, [(0, 3), (3, 0)], 80)
        assert t == pytest.approx(81.0)

    def test_distance_does_not_matter(self):
        # wormhole routing: alpha + n beta regardless of hops
        m = Machine(LinearArray(32), UNIT)
        near = timed_sends(m, [(0, 1)], 64)
        far = timed_sends(m, [(0, 31)], 64)
        assert near == far


class TestChannelSharing:
    def test_two_flows_share_a_channel_at_half_rate(self):
        # 0->2 and 1->3 both cross channel (1,2)
        m = Machine(LinearArray(4), UNIT)
        t = timed_sends(m, [(0, 2), (1, 3)], 100)
        assert t == pytest.approx(1 + 200.0)

    def test_three_flows_one_channel(self):
        m = Machine(LinearArray(6), UNIT)
        t = timed_sends(m, [(0, 3), (1, 4), (2, 5)], 60)
        # all cross (2,3): one third rate each
        assert t == pytest.approx(1 + 180.0)

    def test_rates_rise_when_a_flow_finishes(self):
        # short flow shares, then the long one speeds back up:
        # both start at rate 1/2; the 50-byte flow ends at 1+100;
        # the 150-byte one then has 100 left at full rate.
        m = Machine(LinearArray(4), UNIT)

        def prog(env):
            if env.rank == 0:
                yield env.send(2, np.zeros(50, dtype=np.uint8))
            elif env.rank == 1:
                yield env.send(3, np.zeros(150, dtype=np.uint8))
            elif env.rank == 2:
                yield env.recv(0)
            elif env.rank == 3:
                yield env.recv(1)

        assert m.run(prog).time == pytest.approx(1 + 100 + 100)

    def test_max_min_not_bottlenecked_flows_keep_full_rate(self):
        # 0->2 and 1->3 share (1,2); 4->5 is independent and must not
        # be slowed by the others.
        m = Machine(LinearArray(6), UNIT, trace=True)
        res_t = None

        def prog(env):
            if env.rank == 0:
                yield env.send(2, np.zeros(100, dtype=np.uint8))
            elif env.rank == 1:
                yield env.send(3, np.zeros(100, dtype=np.uint8))
            elif env.rank == 4:
                yield env.send(5, np.zeros(100, dtype=np.uint8))
            elif env.rank in (2, 3):
                yield env.recv(env.rank - 2)
            elif env.rank == 5:
                yield env.recv(4)

        run = m.run(prog)
        done = {(r.src, r.dst): r.t_complete for r in run.trace.completed()}
        assert done[(4, 5)] == pytest.approx(101.0)
        assert done[(0, 2)] == pytest.approx(201.0)


class TestInjectionEjectionPorts:
    def test_two_sends_from_one_node_share_injection(self):
        m = Machine(FullyConnected(3), UNIT)
        t = timed_sends(m, [(0, 1), (0, 2)], 100)
        assert t == pytest.approx(1 + 200.0)

    def test_two_recvs_at_one_node_share_ejection(self):
        m = Machine(FullyConnected(3), UNIT)
        t = timed_sends(m, [(1, 0), (2, 0)], 100)
        assert t == pytest.approx(1 + 200.0)

    def test_send_and_recv_simultaneously_full_rate(self):
        # section 2: "A processor can both send and receive at the same
        # time."
        m = Machine(FullyConnected(3), UNIT)
        t = timed_sends(m, [(0, 1), (2, 0)], 100)
        assert t == pytest.approx(101.0)


class TestExcessLinkCapacity:
    def test_capacity_two_carries_two_flows_penalty_free(self):
        # section 7.1: Paragon links carry several messages unpenalized
        params = UNIT.with_(link_capacity=2.0)
        m = Machine(LinearArray(4), params)
        t = timed_sends(m, [(0, 2), (1, 3)], 100)
        assert t == pytest.approx(101.0)

    def test_capacity_two_with_three_flows_shares(self):
        params = UNIT.with_(link_capacity=2.0)
        m = Machine(LinearArray(6), params)
        t = timed_sends(m, [(0, 3), (1, 4), (2, 5)], 100)
        # channel rate 2.0 split three ways -> 2/3 each
        assert t == pytest.approx(1 + 150.0)

    def test_ports_still_bind_at_high_link_capacity(self):
        params = UNIT.with_(link_capacity=100.0)
        m = Machine(FullyConnected(3), params)
        t = timed_sends(m, [(0, 1), (0, 2)], 100)
        assert t == pytest.approx(1 + 200.0)


class TestMeshConflicts:
    def test_row_traffic_in_distinct_rows_is_free(self):
        m = Machine(Mesh2D(4, 4), UNIT)
        sends = [(4 * r, 4 * r + 3) for r in range(4)]
        assert timed_sends(m, sends, 100) == pytest.approx(101.0)

    def test_interleaved_row_traffic_shares(self):
        # 0->2 and 1->3 in row 0 share channel (1,2)
        m = Machine(Mesh2D(2, 4), UNIT)
        t = timed_sends(m, [(0, 2), (1, 3)], 100)
        assert t == pytest.approx(201.0)

    def test_xy_routing_conflict(self):
        # (0,0)->(1,1) routes through (0,1); (0,1)->(1,1)'s column hop
        # uses the same vertical channel (0,1)->(1,1).
        m = Machine(Mesh2D(2, 2), UNIT)
        t = timed_sends(m, [(0, 3), (1, 3)], 100)
        # both share the vertical channel into node 3 *and* node 3's
        # ejection port -> half rate
        assert t == pytest.approx(201.0)


class TestZeroByteAndEdgeCases:
    def test_zero_byte_message_costs_alpha(self):
        m = Machine(LinearArray(2), UNIT)

        def prog(env):
            if env.rank == 0:
                yield env.send(1, None)
            else:
                data = yield env.recv(0)
                assert data is None

        assert m.run(prog).time == pytest.approx(1.0)

    def test_infinite_bandwidth_machine(self):
        m = Machine(LinearArray(2), MachineParams(alpha=1.0, beta=0.0))

        def prog(env):
            if env.rank == 0:
                yield env.send(1, np.zeros(10 ** 6, dtype=np.uint8))
            else:
                yield env.recv(0)

        assert m.run(prog).time == pytest.approx(1.0)

    def test_statistics_accumulate(self):
        m = Machine(LinearArray(4), UNIT)

        def prog(env):
            if env.rank == 0:
                yield env.send(1, np.zeros(10, dtype=np.uint8))
                yield env.send(2, np.zeros(20, dtype=np.uint8))
            elif env.rank in (1, 2):
                yield env.recv(0)

        run = m.run(prog)
        assert run.messages == 2
        assert run.bytes_moved == pytest.approx(30.0)


class TestFloatDriftClamp:
    """Regression tests for the ``Flow.settle`` epsilon clamp.

    Repeated rate changes settle a flow many times; the subtractions can
    underflow to a tiny positive or *negative* remainder.  Before the
    clamp, such a stale sub-epsilon residue could keep a "live" flow
    whose eta() no longer advances the clock, scheduling zero-duration
    completion epochs.  ``settle`` now snaps any residue below
    ``_EPS_BYTES`` to exactly zero.
    """

    def test_settle_clamps_negative_drift_to_exact_zero(self):
        f = Flow(0, 0, 1, (), 0.3, lambda t: None, 0.0)
        f.rate = 0.1
        for k in range(1, 4):          # 0.3 - 3*0.1 < 0 in binary fp
            f.settle(float(k))
        assert f.remaining == 0.0      # exactly, not approximately
        assert f.eta(3.0) == 3.0

    def test_settle_clamps_subeps_residue_to_exact_zero(self):
        f = Flow(0, 0, 1, (), 1.0, lambda t: None, 0.0)
        f.rate = 1.0 / 3.0
        f.settle(2.9999999999999996)   # leaves ~2e-16 bytes
        assert f.remaining == 0.0

    def test_settle_keeps_real_residue(self):
        f = Flow(0, 0, 1, (), 100.0, lambda t: None, 0.0)
        f.rate = 1.0
        f.settle(40.0)
        assert f.remaining == pytest.approx(60.0)
        assert f.remaining > _EPS_BYTES

    def _drive_standalone(self, topo, specs):
        """Run flows on a bare FluidNetwork under a minimal event loop;
        returns {(src, dst): [completion times]} and the event count."""
        heap = []
        ctr = itertools.count()

        def schedule(t, cb):
            heapq.heappush(heap, (t, next(ctr), cb))

        net = FluidNetwork(topo, UNIT, schedule)
        fired = {}

        def make_cb(key):
            def cb(t):
                fired.setdefault(key, []).append(t)
            return cb

        for s, d, nb in specs:
            net.start_flow(s, d, float(nb), 0.0, make_cb((s, d)))
        steps = 0
        limit = 20 * len(specs) + 50
        while heap:
            steps += 1
            assert steps < limit, "completion-event spin (stale epochs?)"
            _, _, cb = heapq.heappop(heap)
            cb()
        return net, fired, steps

    def test_adversarial_shared_channel_fires_each_flow_once(self):
        # four flows of coprime sizes through one channel: every finish
        # re-rates the rest (1/4 -> 1/3 -> 1/2 -> 1), settling repeatedly
        specs = [(0, 4, 61), (1, 5, 233), (2, 6, 397), (3, 7, 1009)]
        net, fired, _ = self._drive_standalone(LinearArray(8), specs)
        assert sorted(fired) == sorted((s, d) for s, d, _ in specs)
        assert all(len(v) == 1 for v in fired.values())
        assert net.active_flow_count() == 0

    def test_engine_rate_churn_bounded_events(self):
        # Dense random overlap: many mid-flight rate changes, fractional
        # shares.  Every message must complete and the event count must
        # stay linear in the message count (no zero-duration epochs).
        rng = random.Random(5)
        pairs = set()
        sends = []
        for _ in range(60):
            s, d = rng.randrange(10), rng.randrange(10)
            if s != d and (s, d) not in pairs:
                pairs.add((s, d))
                sends.append((s, d, rng.choice([61, 233, 997, 4093])))
        m = Machine(LinearArray(10), UNIT)

        def prog(env):
            reqs = []
            for s, d, nb in sends:
                if env.rank == s:
                    reqs.append(env.isend(d, np.zeros(nb, dtype=np.uint8)))
            for s, d, nb in sends:
                if env.rank == d:
                    reqs.append(env.irecv(s))
            if reqs:
                yield env.waitall(*reqs)

        run = m.run(prog)
        assert run.messages == len(sends)
        assert run.events <= 20 * run.messages + 4 * 10
