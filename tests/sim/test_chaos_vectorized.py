"""Fault-path regression: the vectorized network under real faults.

The differential suite (tests/sim/test_vectorized_network.py) proves
scalar/vectorized bit-identity on clean runs; faults exercise code the
corpus cannot — degraded-route interning, ``apply_slowdown`` capacity
rewrites mid-flight, flow aborts, crash-shrunk groups.  This module
replays the 45-case chaos smoke slice (mesh4x6 x 5 ops x {jitter,
link-perm, crash} x 3 seeds — every one a non-empty
:class:`~repro.sim.faults.FaultSchedule`) with the vectorized fill
forced onto every component and asserts the per-case verdicts are
exactly the ones in the committed full-grid ``CHAOS_report.json``:
same outcome class, same diagnosis line, same completion clock, and in
particular zero silent corruption introduced by the fast path.
"""

import json
import os

import pytest

from benchmarks.chaos.cases import GRIDS, run_case

_REPO = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))
_REPORT = os.path.join(_REPO, "CHAOS_report.json")

_SMOKE = GRIDS["smoke"]


@pytest.fixture(scope="module")
def committed():
    with open(_REPORT) as f:
        report = json.load(f)
    return {rec["id"]: rec for rec in report["records"]}


@pytest.fixture(autouse=True)
def _force_vectorized(monkeypatch):
    monkeypatch.delenv("REPRO_SIM_SCALAR", raising=False)
    monkeypatch.setenv("REPRO_SIM_VEC_MIN", "0")


@pytest.mark.parametrize("case", _SMOKE,
                         ids=["-".join(map(str, c)) for c in _SMOKE])
def test_vectorized_verdict_matches_committed(case, committed):
    topo, op, profile, seed = case
    rec = run_case(topo, op, profile, seed)
    want = committed.get(rec["id"])
    assert want is not None, (
        f"smoke case {rec['id']} missing from committed CHAOS_report.json"
        " — regenerate the full-grid report")
    assert rec["outcome"] == want["outcome"], (
        f"{rec['id']}: vectorized network changed the chaos verdict "
        f"{want['outcome']!r} -> {rec['outcome']!r}")
    assert rec["outcome"] != "silent-corruption"
    # completed runs must also finish at the bit-identical instant, and
    # diagnosed runs must attribute the same fault
    if "time" in want:
        assert repr(rec.get("time")) == repr(want["time"]), rec["id"]
    if "diagnosis" in want:
        assert rec.get("diagnosis") == want["diagnosis"], rec["id"]
