"""Golden-equivalence gate for the simulator's performance work.

Replays the frozen corpus (:mod:`tests.sim.spmd_corpus`) and compares
bit-exact fingerprints — elapsed time, message count, trace hash,
result hash — against ``tests/sim/goldens/corpus_v1.json``.  Any
optimization of :mod:`repro.sim.engine` / :mod:`repro.sim.network` that
changes a *simulated* quantity (as opposed to wall-clock speed) fails
here.

Also pins run-to-run determinism: two runs of the same program in one
process must produce byte-identical order-preserving trace streams
(stronger than the golden compare, which is order-insensitive for
same-timestamp records).
"""

import json

import pytest

from tests.sim import spmd_corpus as corpus


@pytest.fixture(scope="module")
def goldens():
    with open(corpus.GOLDEN_PATH) as f:
        return json.load(f)


def test_golden_file_covers_exactly_the_corpus(goldens):
    assert sorted(goldens) == sorted(corpus.CORPUS)


@pytest.mark.parametrize("name", sorted(corpus.CORPUS))
def test_simulated_results_match_golden(name, goldens):
    got = corpus.fingerprint(corpus.run_entry(name))
    want = goldens[name]
    assert got == want, (
        f"simulated behaviour of corpus entry {name!r} changed; "
        "performance refactors must keep results bit-identical "
        "(if the model itself intentionally changed, regenerate with "
        "`PYTHONPATH=src python -m tests.sim.spmd_corpus --write`)")


#: entries exercising every event-ordering hot spot: heavy same-time
#: completions (mesh/auto), group mappings, and adversarial rate churn.
_DETERMINISM_ENTRIES = [
    "collect-long-p12",
    "allreduce-auto-mesh4x6",
    "bcast-auto-subset",
    "ptp-churn-mesh5x5",
]


@pytest.mark.parametrize("name", _DETERMINISM_ENTRIES)
def test_run_to_run_determinism(name):
    a = corpus.run_entry(name)
    b = corpus.run_entry(name)
    assert repr(a.time) == repr(b.time)
    assert a.messages == b.messages
    assert corpus.trace_stream(a) == corpus.trace_stream(b)
    assert corpus.canonical_results(a) == corpus.canonical_results(b)


#: auto-dispatch entries where prediction capture actually fires, plus
#: one span-free adversarial entry (audit of zero op spans)
_AUDIT_NEUTRALITY_ENTRIES = [
    "bcast-auto-p12",
    "allreduce-auto-mesh4x6",
    "bcast-auto-subset",
    "ptp-churn-ring16",
]


@pytest.mark.parametrize("name", _AUDIT_NEUTRALITY_ENTRIES)
def test_audit_readback_is_passive(name, goldens):
    """Prediction capture + the full model-audit readback (metrics on,
    ``run.audit`` forced) must leave every fingerprint bit-identical —
    the observability contract of docs/observability.md extended to the
    audit layer.  The whole corpus is swept by the CI job
    (``spmd_corpus --check --audit``); this pins the representative
    entries in the tier-1 suite."""
    got = corpus.fingerprint(corpus.run_entry(name, audit=True))
    assert got == goldens[name]
