"""Fuzzing the fluid network against an independent reference.

The production :class:`~repro.sim.network.FluidNetwork` uses incremental
component-restricted water-filling plus event-epoch bookkeeping.  This
test builds an *independent* oracle — a tiny quasi-static simulator that
at every instant recomputes global max-min rates from scratch and
advances to the next flow completion analytically — and checks that
random concurrent transfer patterns finish at identical times in both.
"""

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (FullyConnected, Hypercube, LinearArray, Machine,
                       Mesh2D, MachineParams, Ring, Torus2D, UNIT)


def global_maxmin(flows, capacity):
    """Reference water-filling over *all* flows at once.

    ``flows``: list of (id, set_of_resources); ``capacity``: resource ->
    bytes/sec.  Returns id -> rate.
    """
    caps = dict(capacity)
    counts = {}
    for fid, res in flows:
        for r in res:
            counts[r] = counts.get(r, 0) + 1
    unfixed = {fid: res for fid, res in flows}
    rates = {}
    while unfixed:
        share, bottleneck = min(
            ((caps[r] / counts[r], r) for r in counts if counts[r] > 0),
            key=lambda x: x[0])
        for fid in list(unfixed):
            if bottleneck in unfixed[fid]:
                rates[fid] = share
                for r in unfixed[fid]:
                    caps[r] -= share
                    caps[r] = max(caps[r], 0.0)
                    counts[r] -= 1
                del unfixed[fid]
    return rates


def oracle_completion_times(topology, params, sends):
    """Quasi-static fluid reference: all transfers start at t=alpha
    (after their latency), rates are globally recomputed whenever any
    flow finishes.  Returns {(src, dst): completion_time}.

    Assumes every (src, dst) pair appears at most once and that all
    sends are posted at t=0 with matching receives.
    """
    port = params.injection_bandwidth
    chan = params.channel_bandwidth

    def resources(src, dst):
        res = {("inj", src), ("ej", dst)}
        res |= {("ch",) + ch for ch in topology.route(src, dst)}
        return res

    remaining = {}
    res_of = {}
    for src, dst, nbytes in sends:
        key = (src, dst)
        remaining[key] = float(nbytes)
        res_of[key] = resources(src, dst)

    capacity = {}
    for res in res_of.values():
        for r in res:
            capacity[r] = port if r[0] in ("inj", "ej") else chan

    done = {}
    t = params.alpha  # all flows begin after the latency
    while remaining:
        rates = global_maxmin(list(res_of.items()), capacity)
        # time until first completion at current rates
        dt = min(remaining[k] / rates[k] for k in remaining)
        t += dt
        finished = [k for k in list(remaining)
                    if remaining[k] - rates[k] * dt <= 1e-6]
        for k in list(remaining):
            remaining[k] -= rates[k] * dt
        for k in finished:
            done[k] = t
            del remaining[k]
            del res_of[k]
    return done


def run_sends(topology, params, sends):
    """Run the same pattern on the production engine with tracing."""
    machine = Machine(topology, params, trace=True)
    by_src = {}
    by_dst = {}
    for s, d, n in sends:
        by_src.setdefault(s, []).append((d, n))
        by_dst.setdefault(d, []).append(s)

    def prog(env):
        reqs = []
        for d, n in by_src.get(env.rank, []):
            reqs.append(env.isend(d, np.zeros(int(n), dtype=np.uint8)))
        for s in by_dst.get(env.rank, []):
            reqs.append(env.irecv(s))
        if reqs:
            yield env.waitall(*reqs)

    run = machine.run(prog)
    return {(r.src, r.dst): r.t_complete for r in run.trace.completed()}


def random_pattern(rng, nnodes, max_flows=10):
    """Random set of concurrent transfers with unique (src, dst) pairs
    and at most one send and one recv... (multiple per node allowed —
    ports are shared resources and the models must agree anyway)."""
    nflows = rng.randint(2, max_flows)
    pairs = set()
    sends = []
    for _ in range(nflows):
        src = rng.randrange(nnodes)
        dst = rng.randrange(nnodes)
        if src == dst or (src, dst) in pairs:
            continue
        pairs.add((src, dst))
        sends.append((src, dst, rng.choice([64, 256, 1000, 4096, 9999])))
    return sends


TOPOLOGIES = [
    LinearArray(8),
    Ring(7),
    Mesh2D(3, 4),
    Torus2D(3, 4),
    FullyConnected(6),
]


@pytest.mark.parametrize("topology", TOPOLOGIES,
                         ids=lambda t: repr(t))
@pytest.mark.parametrize("capacity", [1.0, 2.0])
@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5, 6])
def test_fluid_network_matches_global_oracle(topology, capacity, seed):
    rng = random.Random(seed * 1000 + topology.nnodes)
    params = UNIT.with_(link_capacity=capacity)
    sends = random_pattern(rng, topology.nnodes)
    if not sends:
        return
    got = run_sends(topology, params, sends)
    want = oracle_completion_times(topology, params, sends)
    assert set(got) == set(want)
    for key in want:
        assert got[key] == pytest.approx(want[key], rel=1e-6), \
            (key, sends)


# ----------------------------------------------------------------------
# property-based fuzzing (hypothesis): the incremental component-
# restricted recomputation must agree with brute-force global
# progressive filling on arbitrary concurrent patterns
# ----------------------------------------------------------------------

_HYP_TOPOLOGIES = [
    Mesh2D(3, 3), Mesh2D(2, 5), Mesh2D(4, 4),
    Torus2D(3, 3), Torus2D(3, 4),
    Hypercube(3), Hypercube(4),
]


@st.composite
def _flow_patterns(draw):
    topo_idx = draw(st.integers(0, len(_HYP_TOPOLOGIES) - 1))
    topo = _HYP_TOPOLOGIES[topo_idx]
    n = topo.nnodes
    npairs = draw(st.integers(min_value=2, max_value=14))
    raw = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1),
                  st.sampled_from([16, 128, 777, 2048, 30_000])),
        min_size=npairs, max_size=npairs))
    seen = set()
    sends = []
    for s, d, nb in raw:
        if s != d and (s, d) not in seen:
            seen.add((s, d))
            sends.append((s, d, nb))
    capacity = draw(st.sampled_from([1.0, 2.0, 4.0]))
    return topo, capacity, sends


@settings(max_examples=40, deadline=None)
@given(pattern=_flow_patterns())
def test_property_incremental_matches_bruteforce_filling(pattern):
    """Random concurrent flows on mesh/torus/hypercube machines finish
    at the same instants under the production incremental network and
    the brute-force global water-filling oracle."""
    topo, capacity, sends = pattern
    if not sends:
        return
    params = UNIT.with_(link_capacity=capacity)
    got = run_sends(topo, params, sends)
    want = oracle_completion_times(topo, params, sends)
    assert set(got) == set(want)
    for key in want:
        assert got[key] == pytest.approx(want[key], rel=1e-6), \
            (key, topo, capacity, sends)


def test_oracle_sanity_single_flow():
    """The oracle itself must reproduce alpha + n beta for one flow."""
    t = oracle_completion_times(LinearArray(4), UNIT, [(0, 3, 100)])
    assert t[(0, 3)] == pytest.approx(101.0)


def test_oracle_sanity_shared_channel():
    t = oracle_completion_times(LinearArray(4), UNIT,
                                [(0, 2, 100), (1, 3, 100)])
    assert t[(0, 2)] == pytest.approx(201.0)
    assert t[(1, 3)] == pytest.approx(201.0)


def test_staggered_finish_rate_rises():
    """Mixed sizes through one channel: the short flow finishes, the
    long one accelerates — both models must track the same trajectory."""
    sends = [(0, 2, 100), (1, 3, 500)]
    got = run_sends(LinearArray(4), UNIT, sends)
    want = oracle_completion_times(LinearArray(4), UNIT, sends)
    for key in want:
        assert got[key] == pytest.approx(want[key], rel=1e-9)
    # analytically: both at rate 1/2 until t=1+200 (first done), then
    # the long one drains its remaining 400 at full rate
    assert want[(0, 2)] == pytest.approx(201.0)
    assert want[(1, 3)] == pytest.approx(1 + 200 + 400)
