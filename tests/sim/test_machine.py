"""Tests for the Machine facade and RunResult."""

import numpy as np
import pytest

from repro.sim import LinearArray, Machine, Mesh2D, UNIT


def ring_pass(env):
    p = env.nranks
    s = env.isend((env.rank + 1) % p, np.array([float(env.rank)]))
    r = env.irecv((env.rank - 1) % p)
    yield env.waitall(s, r)
    return float(r.data[0])


class TestMachine:
    def test_results_in_rank_order(self):
        m = Machine(LinearArray(5), UNIT)
        run = m.run(ring_pass)
        assert run.results == [4.0, 0.0, 1.0, 2.0, 3.0]

    def test_result_of(self):
        m = Machine(LinearArray(3), UNIT)
        run = m.run(ring_pass)
        assert run.result_of(1) == 0.0

    def test_restricted_ranks_leave_others_none(self):
        m = Machine(LinearArray(6), UNIT)

        def prog(env):
            if env.rank == 2:
                yield env.send(3, np.array([1.0]))
                return "sent"
            data = yield env.recv(2)
            return float(data[0])

        run = m.run(prog, ranks=[2, 3])
        assert run.results[2] == "sent"
        assert run.results[3] == 1.0
        assert run.results[0] is None and run.results[5] is None

    def test_invalid_rank_rejected(self):
        m = Machine(LinearArray(3), UNIT)

        def prog(env):
            yield env.delay(0)

        with pytest.raises(ValueError):
            m.run(prog, ranks=[5])

    def test_trace_flag_per_run_overrides_machine(self):
        m = Machine(LinearArray(3), UNIT, trace=False)
        run = m.run(ring_pass, trace=True)
        assert run.trace is not None
        assert run.trace.message_count() == 3
        run2 = m.run(ring_pass)
        assert run2.trace is None

    def test_extra_args_passed_through(self):
        m = Machine(LinearArray(2), UNIT)

        def prog(env, a, b=0):
            yield env.delay(0)
            return a + b + env.rank

        run = m.run(prog, 10, b=5)
        assert run.results == [15, 16]

    def test_program_exceptions_propagate(self):
        m = Machine(LinearArray(2), UNIT)

        def prog(env):
            yield env.delay(1)
            raise RuntimeError("rank program blew up")

        with pytest.raises(RuntimeError, match="blew up"):
            m.run(prog)

    def test_time_is_last_rank_completion(self):
        m = Machine(LinearArray(3), UNIT)

        def prog(env):
            yield env.delay(float(env.rank * 10))

        assert m.run(prog).time == pytest.approx(20.0)

    def test_nnodes(self):
        assert Machine(Mesh2D(4, 8), UNIT).nnodes == 32
