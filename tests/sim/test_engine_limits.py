"""Edge cases and failure injection for the engine and machine layer."""

import numpy as np
import pytest

from repro.sim import (DeadlockError, LinearArray, Machine, Mesh2D,
                       SimulationLimitError, UNIT)
from repro.sim.engine import Engine


class TestEventLimit:
    def test_runaway_program_hits_the_limit(self):
        """A program generating unbounded events trips the safety cap
        instead of hanging forever."""
        machine = Machine(LinearArray(2), UNIT)

        def ping_forever(env):
            other = 1 - env.rank
            while True:
                s = env.isend(other, np.zeros(1, dtype=np.uint8))
                r = env.irecv(other)
                yield env.waitall(s, r)

        engine = Engine(machine.topology, machine.params,
                        max_events=5000)
        from repro.sim.engine import RankEnv
        for rank in (0, 1):
            engine.spawn(rank, ping_forever(RankEnv(engine, rank)))
        with pytest.raises(SimulationLimitError, match="exceeded 5000"):
            engine.run()


class TestConfigurableEventLimit:
    def test_machine_run_max_events_override(self):
        """Machine.run(max_events=...) reaches the engine."""
        machine = Machine(LinearArray(2), UNIT)

        def ping_forever(env):
            other = 1 - env.rank
            while True:
                s = env.isend(other, np.zeros(1, dtype=np.uint8))
                r = env.irecv(other)
                yield env.waitall(s, r)

        with pytest.raises(SimulationLimitError, match="exceeded 4000"):
            machine.run(ping_forever, max_events=4000)

    def test_machine_level_max_events(self):
        """Machine(max_events=...) applies to every run."""
        machine = Machine(LinearArray(2), UNIT, max_events=3000)

        def ping_forever(env):
            other = 1 - env.rank
            while True:
                s = env.isend(other, np.zeros(1, dtype=np.uint8))
                r = env.irecv(other)
                yield env.waitall(s, r)

        with pytest.raises(SimulationLimitError, match="exceeded 3000"):
            machine.run(ping_forever)

    def test_context_can_lower_the_limit_mid_run(self):
        """CollContext.max_events reads and writes the live engine limit,
        so a rank program can trip SimulationLimitError early."""
        from repro.core.context import CollContext
        machine = Machine(LinearArray(2), UNIT)

        def prog(env):
            ctx = CollContext(env)
            if env.rank == 0:
                assert ctx.max_events == 200_000_000  # engine default
                ctx.max_events = 500
            other = 1 - env.rank
            while True:
                s = env.isend(other, np.zeros(1, dtype=np.uint8))
                r = env.irecv(other)
                yield env.waitall(s, r)

        with pytest.raises(SimulationLimitError, match="exceeded 500"):
            machine.run(prog)

    def test_context_rejects_nonpositive_limit(self):
        from repro.core.context import CollContext
        machine = Machine(LinearArray(1), UNIT)

        def prog(env):
            ctx = CollContext(env)
            with pytest.raises(ValueError):
                ctx.max_events = 0
            yield env.delay(0.0)
            return "ok"

        assert machine.run(prog).results == ["ok"]


class TestDeadlockDiagnostics:
    def test_diagnostics_name_the_blocked_peer(self):
        machine = Machine(LinearArray(3), UNIT)

        def prog(env):
            if env.rank == 0:
                yield env.recv(2, tag=7)

        with pytest.raises(DeadlockError) as exc:
            machine.run(prog)
        msg = str(exc.value)
        assert "rank 0" in msg
        assert "peer=2" in msg
        assert "tag=7" in msg

    def test_partial_deadlock_counts_ranks(self):
        machine = Machine(LinearArray(4), UNIT)

        def prog(env):
            if env.rank in (1, 3):
                yield env.recv(0)
            # ranks 0 and 2 finish immediately

        with pytest.raises(DeadlockError, match="2 rank"):
            machine.run(prog)

    def test_cyclic_rendezvous_deadlock(self):
        """Classic head-to-head blocking sends."""
        machine = Machine(LinearArray(2), UNIT)

        def prog(env):
            other = 1 - env.rank
            yield env.send(other, np.zeros(4))
            yield env.recv(other)

        with pytest.raises(DeadlockError):
            machine.run(prog)

    def test_wait_for_cycle_appears_in_message(self):
        """The upgraded diagnosis names the wait-for cycle explicitly
        (regression for the old first-16-repr-only report)."""
        machine = Machine(LinearArray(2), UNIT)

        def prog(env):
            other = 1 - env.rank
            yield env.send(other, np.zeros(4))
            yield env.recv(other)

        with pytest.raises(DeadlockError) as exc:
            machine.run(prog)
        msg = str(exc.value)
        assert "wait-for cycle: 0 -> 1 -> 0" in msg

    def test_three_rank_cycle(self):
        """0 sends to 1, 1 to 2, 2 to 0 — all blocking: a 3-cycle."""
        machine = Machine(LinearArray(3), UNIT)

        def prog(env):
            nxt = (env.rank + 1) % 3
            prv = (env.rank - 1) % 3
            yield env.send(nxt, np.zeros(4))
            yield env.recv(prv)

        with pytest.raises(DeadlockError) as exc:
            machine.run(prog)
        assert "wait-for cycle: 0 -> 1 -> 2 -> 0" in str(exc.value)

    def test_oldest_unmatched_request_reported(self):
        """Each blocked rank's oldest unmatched posted request is named
        with (peer, tag, nbytes) and its post time."""
        machine = Machine(LinearArray(3), UNIT)

        def prog(env):
            if env.rank == 0:
                yield env.delay(2.5)
                # never matched: rank 2 never sends tag 9
                yield env.recv(2, tag=9)

        with pytest.raises(DeadlockError) as exc:
            machine.run(prog)
        msg = str(exc.value)
        assert "rank 0: oldest unmatched recv (peer=2, tag=9, 0B) " \
               "posted at t=2.5" in msg

    def test_no_cycle_line_for_acyclic_hang(self):
        """A one-sided hang (no cycle) must not invent a cycle."""
        machine = Machine(LinearArray(3), UNIT)

        def prog(env):
            if env.rank == 0:
                yield env.recv(2, tag=7)

        with pytest.raises(DeadlockError) as exc:
            machine.run(prog)
        assert "wait-for cycle" not in str(exc.value)

    def test_head_to_head_nonblocking_is_fine(self):
        """The same exchange with isend/irecv completes."""
        machine = Machine(LinearArray(2), UNIT)

        def prog(env):
            other = 1 - env.rank
            s = env.isend(other, np.array([float(env.rank)]))
            r = env.irecv(other)
            yield env.waitall(s, r)
            return float(r.data[0])

        run = machine.run(prog)
        assert run.results == [1.0, 0.0]


class TestMiscEdgeCases:
    def test_mark_without_tracer_is_harmless(self):
        machine = Machine(LinearArray(1), UNIT, trace=False)

        def prog(env):
            yield env.mark("hello")
            return "ok"

        assert machine.run(prog).results == ["ok"]

    def test_zero_compute_and_delay(self):
        machine = Machine(LinearArray(1), UNIT)

        def prog(env):
            yield env.delay(0.0)
            yield env.compute(0)
            yield env.overhead(0)
            return env.now

        assert machine.run(prog).results == [0.0]

    def test_empty_waitall_resumes_immediately(self):
        machine = Machine(LinearArray(1), UNIT)

        def prog(env):
            yield env.waitall()
            return "done"

        assert machine.run(prog).results == ["done"]

    def test_many_small_messages_one_pair(self):
        """Stress the per-pair FIFO with hundreds of tagged messages."""
        machine = Machine(LinearArray(2), UNIT)
        count = 300

        def prog(env):
            if env.rank == 0:
                reqs = [env.isend(1, np.array([float(k)]), tag=k % 7)
                        for k in range(count)]
                yield env.waitall(*reqs)
                return None
            got = []
            for k in range(count):
                v = yield env.recv(0, tag=k % 7)
                got.append(float(v[0]))
            return got

        run = machine.run(prog)
        assert run.results[1] == [float(k) for k in range(count)]

    def test_nbytes_override(self):
        """An explicit nbytes (e.g. a header-inflated message) controls
        the wire time regardless of the payload."""
        machine = Machine(LinearArray(2), UNIT)

        def prog(env):
            if env.rank == 0:
                yield env.send(1, np.zeros(1, dtype=np.uint8),
                               nbytes=500)
            else:
                yield env.recv(0)

        assert machine.run(prog).time == pytest.approx(501.0)

    def test_results_preserved_after_exception_free_run(self):
        machine = Machine(Mesh2D(2, 2), UNIT)

        def prog(env):
            yield env.delay(env.rank * 1.0)
            return env.rank ** 2

        run = machine.run(prog)
        assert run.results == [0, 1, 4, 9]
