"""Edge cases and failure injection for the engine and machine layer."""

import numpy as np
import pytest

from repro.sim import (DeadlockError, LinearArray, Machine, Mesh2D,
                       SimulationLimitError, UNIT)
from repro.sim.engine import Engine


class TestEventLimit:
    def test_runaway_program_hits_the_limit(self):
        """A program generating unbounded events trips the safety cap
        instead of hanging forever."""
        machine = Machine(LinearArray(2), UNIT)

        def ping_forever(env):
            other = 1 - env.rank
            while True:
                s = env.isend(other, np.zeros(1, dtype=np.uint8))
                r = env.irecv(other)
                yield env.waitall(s, r)

        engine = Engine(machine.topology, machine.params,
                        max_events=5000)
        from repro.sim.engine import RankEnv
        for rank in (0, 1):
            engine.spawn(rank, ping_forever(RankEnv(engine, rank)))
        with pytest.raises(SimulationLimitError, match="exceeded 5000"):
            engine.run()


class TestDeadlockDiagnostics:
    def test_diagnostics_name_the_blocked_peer(self):
        machine = Machine(LinearArray(3), UNIT)

        def prog(env):
            if env.rank == 0:
                yield env.recv(2, tag=7)

        with pytest.raises(DeadlockError) as exc:
            machine.run(prog)
        msg = str(exc.value)
        assert "rank 0" in msg
        assert "peer=2" in msg
        assert "tag=7" in msg

    def test_partial_deadlock_counts_ranks(self):
        machine = Machine(LinearArray(4), UNIT)

        def prog(env):
            if env.rank in (1, 3):
                yield env.recv(0)
            # ranks 0 and 2 finish immediately

        with pytest.raises(DeadlockError, match="2 rank"):
            machine.run(prog)

    def test_cyclic_rendezvous_deadlock(self):
        """Classic head-to-head blocking sends."""
        machine = Machine(LinearArray(2), UNIT)

        def prog(env):
            other = 1 - env.rank
            yield env.send(other, np.zeros(4))
            yield env.recv(other)

        with pytest.raises(DeadlockError):
            machine.run(prog)

    def test_head_to_head_nonblocking_is_fine(self):
        """The same exchange with isend/irecv completes."""
        machine = Machine(LinearArray(2), UNIT)

        def prog(env):
            other = 1 - env.rank
            s = env.isend(other, np.array([float(env.rank)]))
            r = env.irecv(other)
            yield env.waitall(s, r)
            return float(r.data[0])

        run = machine.run(prog)
        assert run.results == [1.0, 0.0]


class TestMiscEdgeCases:
    def test_mark_without_tracer_is_harmless(self):
        machine = Machine(LinearArray(1), UNIT, trace=False)

        def prog(env):
            yield env.mark("hello")
            return "ok"

        assert machine.run(prog).results == ["ok"]

    def test_zero_compute_and_delay(self):
        machine = Machine(LinearArray(1), UNIT)

        def prog(env):
            yield env.delay(0.0)
            yield env.compute(0)
            yield env.overhead(0)
            return env.now

        assert machine.run(prog).results == [0.0]

    def test_empty_waitall_resumes_immediately(self):
        machine = Machine(LinearArray(1), UNIT)

        def prog(env):
            yield env.waitall()
            return "done"

        assert machine.run(prog).results == ["done"]

    def test_many_small_messages_one_pair(self):
        """Stress the per-pair FIFO with hundreds of tagged messages."""
        machine = Machine(LinearArray(2), UNIT)
        count = 300

        def prog(env):
            if env.rank == 0:
                reqs = [env.isend(1, np.array([float(k)]), tag=k % 7)
                        for k in range(count)]
                yield env.waitall(*reqs)
                return None
            got = []
            for k in range(count):
                v = yield env.recv(0, tag=k % 7)
                got.append(float(v[0]))
            return got

        run = machine.run(prog)
        assert run.results[1] == [float(k) for k in range(count)]

    def test_nbytes_override(self):
        """An explicit nbytes (e.g. a header-inflated message) controls
        the wire time regardless of the payload."""
        machine = Machine(LinearArray(2), UNIT)

        def prog(env):
            if env.rank == 0:
                yield env.send(1, np.zeros(1, dtype=np.uint8),
                               nbytes=500)
            else:
                yield env.recv(0)

        assert machine.run(prog).time == pytest.approx(501.0)

    def test_results_preserved_after_exception_free_run(self):
        machine = Machine(Mesh2D(2, 2), UNIT)

        def prog(env):
            yield env.delay(env.rank * 1.0)
            return env.rank ** 2

        run = machine.run(prog)
        assert run.results == [0, 1, 4, 9]
