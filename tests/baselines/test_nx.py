"""Tests for the NX-style baselines and the NXtoiCC interface."""

import math

import numpy as np
import pytest

from repro.baselines import (NXInterface, nx_bcast, nx_collect,
                             nx_collect_dissemination, nx_gather,
                             nx_gdsum, nx_reduce)
from repro.core.context import CollContext
from repro.sim import LinearArray, Machine, Mesh2D, PARAGON, UNIT


def run_linear(p, prog, *args, params=UNIT, **kw):
    return Machine(LinearArray(p), params).run(prog, *args, **kw)


class TestNxBcast:
    @pytest.mark.parametrize("p,root", [(1, 0), (2, 1), (5, 0), (8, 3),
                                        (13, 12), (30, 7)])
    def test_correct(self, p, root):
        n = 16
        x = np.arange(n, dtype=np.float64)

        def prog(env):
            ctx = CollContext(env)
            buf = x.copy() if env.rank == root else None
            return (yield from nx_bcast(ctx, buf, root=root))

        run = run_linear(p, prog)
        for res in run.results:
            assert np.array_equal(res, x)

    def test_binomial_round_count(self):
        """ceil(log2 p) rounds of full-vector sends."""
        p, n = 16, 8
        params = UNIT.with_(link_capacity=100.0)  # suppress conflicts

        def prog(env):
            ctx = CollContext(env)
            buf = np.zeros(n) if env.rank == 0 else None
            return (yield from nx_bcast(ctx, buf, root=0, copy_factor=1.0))

        t = run_linear(p, prog, params=params).time
        assert t == pytest.approx(math.ceil(math.log2(p)) * (1 + n * 8))

    def test_copy_factor_doubles_wire_time(self):
        p, n = 8, 32
        params = UNIT.with_(link_capacity=100.0)

        def prog(env, cf):
            ctx = CollContext(env)
            buf = np.zeros(n) if env.rank == 0 else None
            return (yield from nx_bcast(ctx, buf, root=0, copy_factor=cf))

        t1 = run_linear(p, prog, 1.0, params=params).time
        t2 = run_linear(p, prog, 2.0, params=params).time
        L = 3
        assert t2 - t1 == pytest.approx(L * n * 8)

    def test_overhead_charged_once(self):
        params = UNIT.with_(sw_overhead=100.0, link_capacity=100.0)

        def prog(env):
            ctx = CollContext(env)
            buf = np.zeros(2) if env.rank == 0 else None
            return (yield from nx_bcast(ctx, buf, root=0, copy_factor=1.0))

        t = run_linear(8, prog, params=params).time
        # 3 rounds of (1 + 16) + one 100 overhead (all ranks, parallel)
        assert t == pytest.approx(100 + 3 * 17)


class TestNxReduceAndGdsum:
    @pytest.mark.parametrize("p,root", [(1, 0), (2, 0), (6, 2), (8, 0),
                                        (13, 5)])
    def test_reduce_correct(self, p, root):
        n = 8

        def prog(env):
            ctx = CollContext(env)
            v = np.full(n, float(env.rank + 1))
            return (yield from nx_reduce(ctx, v, op="sum", root=root))

        run = run_linear(p, prog)
        assert np.allclose(run.results[root], p * (p + 1) / 2)
        for i, r in enumerate(run.results):
            if i != root:
                assert r is None

    @pytest.mark.parametrize("p", [1, 2, 3, 5, 8, 16, 30])
    def test_gdsum_correct(self, p):
        n = 12

        def prog(env):
            ctx = CollContext(env)
            v = np.full(n, float(env.rank + 1))
            return (yield from nx_gdsum(ctx, v))

        run = run_linear(p, prog)
        for res in run.results:
            assert np.allclose(res, p * (p + 1) / 2)

    def test_gdsum_full_vector_both_ways(self):
        """Fan-in + fan-out of the whole vector: 2 L (alpha + n beta)
        plus L n gamma, with no copy inflation."""
        p, n = 8, 16
        params = UNIT.with_(link_capacity=100.0)

        def prog(env):
            ctx = CollContext(env)
            return (yield from nx_gdsum(ctx, np.zeros(n),
                                        copy_factor=1.0))

        t = run_linear(p, prog, params=params).time
        L = 3
        assert t == pytest.approx(2 * L * (1 + n * 8) + L * n)


class TestNxCollect:
    @pytest.mark.parametrize("p", [1, 2, 3, 5, 8, 13, 30])
    def test_correct(self, p):
        nb = 5

        def prog(env):
            ctx = CollContext(env)
            mine = np.full(nb, float(env.rank))
            return (yield from nx_collect(ctx, mine))

        run = run_linear(p, prog)
        ref = np.concatenate([np.full(nb, float(i)) for i in range(p)])
        for res in run.results:
            assert np.array_equal(res, ref)

    def test_uneven_blocks(self):
        sizes = [2, 0, 4, 1, 3]

        def prog(env):
            ctx = CollContext(env)
            mine = np.full(sizes[env.rank], float(env.rank))
            return (yield from nx_collect(ctx, mine, sizes=sizes))

        run = run_linear(5, prog)
        ref = np.concatenate([np.full(s, float(i))
                              for i, s in enumerate(sizes)])
        for res in run.results:
            assert np.array_equal(res, ref)

    def test_ring_round_count(self):
        """The ring gcolx costs p - 1 sequential rounds — the Table 3
        smoking gun for 8-byte collects."""
        p, nb = 8, 2
        params = UNIT.with_(link_capacity=100.0)

        def prog(env):
            ctx = CollContext(env)
            return (yield from nx_collect(ctx, np.zeros(nb),
                                          copy_factor=1.0))

        run = run_linear(p, prog, params=params)
        expect = (p - 1) * (1 + nb * 8)
        assert run.time == pytest.approx(expect)

    def test_dissemination_variant_log_rounds(self):
        """The strongest-baseline ablation: ceil(log2 p) rounds."""
        p, nb = 8, 2
        params = UNIT.with_(link_capacity=100.0)

        def prog(env):
            ctx = CollContext(env)
            return (yield from nx_collect_dissemination(
                ctx, np.zeros(nb), copy_factor=1.0))

        run = run_linear(p, prog, params=params)
        # rounds move 1, 2, 4 blocks of nb doubles
        expect = sum(1 + k * nb * 8 for k in (1, 2, 4))
        assert run.time == pytest.approx(expect)

    @pytest.mark.parametrize("p", [1, 2, 3, 5, 8, 13])
    def test_dissemination_correct(self, p):
        nb = 3

        def prog(env):
            ctx = CollContext(env)
            mine = np.full(nb, float(env.rank))
            return (yield from nx_collect_dissemination(ctx, mine))

        run = run_linear(p, prog)
        ref = np.concatenate([np.full(nb, float(i)) for i in range(p)])
        for res in run.results:
            assert np.array_equal(res, ref)


class TestNxGather:
    @pytest.mark.parametrize("p,root", [(2, 0), (5, 3), (9, 0)])
    def test_correct(self, p, root):
        def prog(env):
            ctx = CollContext(env)
            mine = np.full(3, float(env.rank))
            return (yield from nx_gather(ctx, mine, root=root))

        run = run_linear(p, prog)
        ref = np.concatenate([np.full(3, float(i)) for i in range(p)])
        assert np.array_equal(run.results[root], ref)

    def test_root_ejection_is_the_bottleneck(self):
        p, nb = 5, 100

        def prog(env):
            ctx = CollContext(env)
            return (yield from nx_gather(ctx, np.zeros(nb),
                                         copy_factor=1.0))

        t = run_linear(p, prog).time
        # four concurrent senders share the root's ejection port
        assert t >= 4 * nb * 8


class TestNXInterface:
    def test_modes_agree_on_results(self):
        m = Machine(Mesh2D(4, 4), PARAGON)

        def prog(env, mode):
            nxif = NXInterface(env, mode=mode)
            v = np.arange(64, dtype=np.float64) + env.rank
            s = yield from nxif.gdsum(v)
            c = yield from nxif.gcolx(np.full(4, float(env.rank)))
            mx = yield from nxif.gdhigh(v)
            mn = yield from nxif.gdlow(v)
            pr = yield from nxif.gisum(np.ones(3, dtype=np.int64))
            return (float(s[7]), float(c[-1]), float(mx[0]),
                    float(mn[0]), int(pr[0]))

        nx = m.run(prog, "nx")
        icc = m.run(prog, "icc")
        assert nx.results == icc.results

    def test_icc_mode_wins_for_long_vectors(self):
        m = Machine(Mesh2D(4, 8), PARAGON)

        def prog(env, mode):
            nxif = NXInterface(env, mode=mode)
            v = np.zeros(32768)
            yield from nxif.gdsum(v)

        t_nx = m.run(prog, "nx").time
        t_icc = m.run(prog, "icc").time
        assert t_icc < t_nx

    def test_bcast_and_sync(self):
        m = Machine(LinearArray(6), UNIT)

        def prog(env):
            nxif = NXInterface(env, mode="nx")
            x = np.arange(8.0) if env.rank == 0 else None
            x = yield from nxif.icc_bcast(x, root=0, total=8)
            yield from nxif.gsync()
            return float(x[3])

        run = m.run(prog)
        assert all(v == 3.0 for v in run.results)

    def test_bad_mode_rejected(self):
        m = Machine(LinearArray(2), UNIT)

        def prog(env):
            NXInterface(env, mode="mpi")
            yield env.delay(0)

        with pytest.raises(ValueError, match="'nx' or 'icc'"):
            m.run(prog)
