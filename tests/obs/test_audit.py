"""Tests for the model-audit observatory (repro.obs.audit):
prediction capture readback, the conflict-freedom verifier, and
alpha/beta drift detection."""

import math

import numpy as np
import pytest

from repro.core import api
from repro.obs.audit import (BUILDING_BLOCKS, ChannelShare, ConflictVerdict,
                             audit_run, contended_channels, drift_from_runs,
                             fit_drift, predicted_terms, run_block_primitive,
                             verify_building_blocks)
from repro.sim import LinearArray, Machine, Mesh2D, PARAGON, UNIT


def _auto_program(n_bcast=4096, n_allreduce=512):
    def prog(env):
        buf = (np.arange(n_bcast, dtype=np.float64)
               if env.rank == 0 else None)
        out = yield from api.bcast(env, buf, root=0, total=n_bcast,
                                   algorithm="auto")
        red = yield from api.allreduce(
            env, np.arange(n_allreduce, dtype=np.float64),
            op="sum", algorithm="auto")
        return float(out[-1]) + float(red[0])
    return prog


@pytest.fixture(scope="module")
def traced_auto_run():
    machine = Machine(LinearArray(12), PARAGON)
    return machine.run(_auto_program(), trace=True, metrics=True)


class TestPredictionCapture:
    def test_op_spans_carry_prediction_record(self, traced_auto_run):
        spans = traced_auto_run.trace.op_spans()
        assert spans
        attrs = spans[0].attrs
        assert "predicted_cost" in attrs
        assert "selector_candidates" in attrs
        assert "selector_bucket" in attrs
        assert attrs["selector_itemsize"] == 8

    def test_candidates_are_ranked_cheapest_first(self, traced_auto_run):
        attrs = traced_auto_run.trace.op_spans()[0].attrs
        costs = [c for _, c in attrs["selector_candidates"]]
        assert costs == sorted(costs)
        # the chosen strategy is the head of the ranking
        assert attrs["predicted_cost"] == costs[0]
        assert attrs["selector_candidates"][0][0] == attrs["strategy"]

    def test_explicit_algorithm_captures_nothing(self):
        machine = Machine(LinearArray(8), UNIT)

        def prog(env):
            buf = np.arange(64, dtype=np.float64) if env.rank == 0 else None
            yield from api.bcast(env, buf, root=0, total=64,
                                 algorithm="short")
            return None
        run = machine.run(prog, trace=True)
        for s in run.trace.op_spans():
            assert "predicted_cost" not in (s.attrs or {})

    def test_untraced_dispatch_pays_nothing(self):
        # no tracer: annotate_next_op is a no-op and the run has no audit
        machine = Machine(LinearArray(8), UNIT)
        run = machine.run(_auto_program(64, 64))
        assert run.trace is None
        assert run.audit is None


class TestAuditRun:
    def test_one_entry_per_collective(self, traced_auto_run):
        aud = traced_auto_run.audit
        assert [e.operation for e in aud] == ["bcast", "allreduce"]
        assert all(e.ranks == 12 for e in aud)

    def test_audit_is_cached(self, traced_auto_run):
        assert traced_auto_run.audit is traced_auto_run.audit

    def test_predicted_close_to_measured(self, traced_auto_run):
        # the cost model and the simulator implement the same machine
        # model; on a conflict-priced linear array they agree within a
        # few percent (cf. tests/core/test_cost_agreement.py)
        for e in traced_auto_run.audit.predicted_entries():
            assert e.ratio == pytest.approx(1.0, rel=0.1)

    def test_terms_sum_to_prediction(self, traced_auto_run):
        for e in traced_auto_run.audit.predicted_entries():
            assert sum(e.predicted_terms.values()) \
                == pytest.approx(e.predicted, rel=1e-9)

    def test_critical_path_is_windowed(self, traced_auto_run):
        # each entry's critical path must fit inside its own window —
        # the second collective must not inherit the first one's time
        for e in traced_auto_run.audit:
            cp = e.critical_path
            assert cp["time"] <= e.measured * (1 + 1e-9)
            assert cp["hops"] >= 1

    def test_measured_spans_the_op_window(self, traced_auto_run):
        aud = traced_auto_run.audit
        # collectives start in program order (their windows may overlap
        # slightly: without a barrier a fast rank enters op 2 before the
        # slowest rank exits op 1)
        assert aud.entries[0].t_start <= aud.entries[1].t_start
        assert aud.entries[1].t_end <= traced_auto_run.time * (1 + 1e-12)
        assert aud.time == traced_auto_run.time

    def test_render_and_json(self, traced_auto_run):
        import json
        text = traced_auto_run.audit.render()
        assert "bcast" in text and "ratio" in text
        blob = json.dumps(traced_auto_run.audit.to_json())
        assert "predicted_terms" in blob

    def test_untraced_run_rejected(self):
        machine = Machine(LinearArray(4), UNIT)

        def prog(env):
            yield from api.barrier(env)
            return None
        run = machine.run(prog)
        with pytest.raises(ValueError, match="traced"):
            audit_run(run)

    def test_span_free_run_audits_empty(self):
        # adversarial point-to-point traffic has no op spans: the audit
        # is empty, not an error
        machine = Machine(LinearArray(4), UNIT)

        def prog(env):
            if env.rank == 0:
                yield env.send(1, np.zeros(16))
            elif env.rank == 1:
                yield env.recv(0)
            return None
        run = machine.run(prog, trace=True)
        assert len(run.audit) == 0
        assert "no op spans" in run.audit.render()


class TestPredictedTerms:
    def test_linear_decomposition_is_exact(self):
        from repro.core.costmodel import CostModel
        from repro.core.strategy import Strategy
        s = Strategy((3, 4), "SMC")
        terms = predicted_terms(PARAGON, 8, "bcast", s, 4096)
        full = CostModel(PARAGON, itemsize=8).hybrid("bcast", s, 4096)
        assert sum(terms.values()) == pytest.approx(full, rel=1e-12)
        assert set(terms) == {"alpha", "beta", "gamma", "overhead"}
        assert terms["gamma"] == 0.0  # bcast does no combining


class TestConflictFreedomVerifier:
    @pytest.mark.parametrize("p", [7, 12])
    def test_all_four_blocks_conflict_free_on_linear_array(self, p):
        # p=7: non-power-of-two — the MST recursions and the ring wrap
        # are exactly where it could go wrong
        verdicts = verify_building_blocks(p, params=UNIT)
        assert sorted(verdicts) == sorted(BUILDING_BLOCKS)
        for v in verdicts.values():
            assert v.ok, str(v)
            assert v.contended == ()
            assert v.messages > 0
            assert v.p == p

    @pytest.mark.parametrize("group_kind", ["row", "col"])
    def test_blocks_conflict_free_on_aligned_mesh_group(self, group_kind):
        topo = Mesh2D(4, 5)
        if group_kind == "row":
            group = [1 * 5 + c for c in range(5)]
        else:
            group = [r * 5 + 2 for r in range(4)]
        verdicts = verify_building_blocks(len(group), params=UNIT,
                                          topology=topo, group=group)
        assert all(v.ok for v in verdicts.values())

    def test_contention_detected_with_flows(self):
        # two flows forced through the same channels: 0->3 and 1->3
        # share ("ch",1,2) and ("ch",2,3) on a 4-node line
        def prog(env):
            if env.rank in (0, 1):
                yield env.send(3, np.zeros(1000))
            elif env.rank == 3:
                h1 = env.irecv(0)
                h2 = env.irecv(1)
                yield env.waitall(h1, h2)
            return None
        topo = LinearArray(4)
        run = Machine(topo, UNIT).run(prog, trace=True, metrics=True)
        shares = contended_channels(run, topo)
        assert {s.channel for s in shares} == {("ch", 1, 2), ("ch", 2, 3)}
        for s in shares:
            assert s.max_concurrent == 2
            assert {(f.src, f.dst) for f in s.flows} == {(0, 3), (1, 3)}

    def test_verdict_serialization(self):
        v = verify_building_blocks(7, params=UNIT)["bucket_collect"]
        blob = v.to_json()
        assert blob["ok"] is True and blob["block"] == "bucket_collect"
        assert "conflict-free" in str(v)

    def test_unmetered_run_rejected(self):
        topo = LinearArray(4)
        run = Machine(topo, UNIT).run(_noop, trace=True)
        with pytest.raises(ValueError, match="metered"):
            contended_channels(run, topo)


def _noop(env):
    yield from api.barrier(env)
    return None


class TestDriftDetection:
    def test_zero_drift_on_conflict_free_traffic(self):
        runs = [run_block_primitive(kind, 8, params=PARAGON, n=n)
                for kind in ("mst_bcast", "bucket_collect")
                for n in (64, 512, 4096)]
        d = drift_from_runs(runs, PARAGON)
        assert d.alpha_fit == pytest.approx(PARAGON.alpha, rel=1e-6)
        assert d.beta_fit == pytest.approx(PARAGON.beta, rel=1e-6)
        assert d.max_abs_rel_err < 1e-6
        assert d.samples > 10

    def test_misconfigured_params_show_drift(self):
        # simulate under PARAGON, but claim the machine is 2x faster:
        # the fit must expose the divergence
        runs = [run_block_primitive("mst_bcast", 8, params=PARAGON, n=n)
                for n in (64, 4096)]
        wrong = PARAGON.with_(alpha=PARAGON.alpha / 2,
                              beta=PARAGON.beta / 2)
        d = drift_from_runs(runs, wrong)
        assert d.alpha_rel_err == pytest.approx(1.0, rel=1e-6)
        assert d.beta_rel_err == pytest.approx(1.0, rel=1e-6)
        assert d.max_abs_rel_err == pytest.approx(1.0, rel=1e-6)

    def test_needs_two_distinct_lengths(self):
        runs = [run_block_primitive("mst_bcast", 4, params=UNIT, n=64)]
        msgs = runs[0].trace.completed()
        same = [m for m in msgs if m.nbytes == msgs[0].nbytes]
        with pytest.raises(ValueError, match="two distinct"):
            fit_drift(same, UNIT)

    def test_json_round_trip(self):
        import json
        runs = [run_block_primitive("mst_bcast", 4, params=UNIT, n=n)
                for n in (32, 256)]
        d = drift_from_runs(runs, UNIT)
        blob = json.loads(json.dumps(d.to_json()))
        assert blob["samples"] == d.samples


class TestObsFacade:
    def test_audit_names_exported_lazily(self):
        import repro.obs as obs
        assert obs.audit_run is audit_run
        assert obs.verify_building_blocks is verify_building_blocks
        assert obs.BUILDING_BLOCKS is BUILDING_BLOCKS
