"""Channel-metrics collection: accounting exactness and neutrality."""

import math

import numpy as np
import pytest

from repro.obs import (ChannelStats, ResourceMetrics, busiest, channels_only,
                       total_contention)
from repro.sim import LinearArray, Machine, Mesh2D, PARAGON, UNIT


def one_send(nbytes):
    def prog(env):
        if env.rank == 0:
            yield env.send(1, np.zeros(int(nbytes), dtype=np.uint8),
                           nbytes=float(nbytes))
        elif env.rank == 1:
            yield env.recv(0)
    return prog


class TestAccounting:
    def test_conflict_free_busy_time_is_exactly_n_beta(self):
        # Acceptance invariant: on a conflict-free linear send the
        # channel's busy time is the wire term n*beta of the cost model,
        # bit-exact under the unit parameters (alpha is charged by the
        # engine before the flow enters the network).
        n = 256
        res = Machine(LinearArray(4), UNIT).run(one_send(n), metrics=True)
        ch = res.channel_metrics[("ch", 0, 1)]
        assert ch.busy_time == n * UNIT.beta
        assert ch.bytes == n
        assert ch.flows == 1
        assert ch.max_concurrent == 1
        assert ch.sharing_factor == 1.0

    def test_paragon_busy_time_matches_n_beta(self):
        n = 4096
        res = Machine(LinearArray(4), PARAGON).run(one_send(n), metrics=True)
        ch = res.channel_metrics[("ch", 0, 1)]
        assert ch.busy_time == pytest.approx(n * PARAGON.beta, rel=1e-12)

    def test_injection_and_ejection_ports_metered(self):
        res = Machine(LinearArray(4), UNIT).run(one_send(64), metrics=True)
        assert res.channel_metrics[("inj", 0)].busy_time == 64.0
        assert res.channel_metrics[("ej", 1)].busy_time == 64.0

    def test_untouched_resources_omitted(self):
        res = Machine(LinearArray(4), UNIT).run(one_send(64), metrics=True)
        assert ("ch", 2, 3) not in res.channel_metrics
        assert all(s.flows > 0 for s in res.channel_metrics.values())

    def test_sharing_factor_counts_conflicts(self):
        # Two same-direction transfers interleaved on channel 1->2: the
        # fluid model halves each flow's rate, the collector must see
        # peak concurrency 2 and a time-weighted sharing factor > 1.
        def prog(env):
            n = 1024
            if env.rank in (0, 1):
                yield env.send(env.rank + 2,
                               np.zeros(n, dtype=np.uint8), nbytes=float(n))
            elif env.rank in (2, 3):
                yield env.recv(env.rank - 2)

        res = Machine(LinearArray(4), UNIT).run(prog, metrics=True)
        ch = res.channel_metrics[("ch", 1, 2)]
        assert ch.max_concurrent == 2
        assert ch.flows == 2
        assert 1.0 < ch.sharing_factor <= 2.0
        assert total_contention(res.channel_metrics) > 1.0

    def test_busy_time_not_double_counted_under_sharing(self):
        # Same scenario: busy time is wall time with >=1 flow, which for
        # two perfectly overlapped halved-rate flows is 2n * beta (each
        # flow alone would take n*beta at full rate, 2n*beta at half).
        def prog(env):
            n = 1024
            if env.rank in (0, 1):
                yield env.send(env.rank + 2,
                               np.zeros(n, dtype=np.uint8), nbytes=float(n))
            elif env.rank in (2, 3):
                yield env.recv(env.rank - 2)

        res = Machine(LinearArray(4), UNIT).run(prog, metrics=True)
        ch = res.channel_metrics[("ch", 1, 2)]
        assert ch.busy_time == pytest.approx(2048.0)

    def test_metrics_off_is_none(self):
        res = Machine(LinearArray(4), UNIT).run(one_send(64))
        assert res.channel_metrics is None

    def test_machine_level_default(self):
        m = Machine(LinearArray(4), UNIT, metrics=True)
        assert m.run(one_send(64)).channel_metrics is not None
        assert m.run(one_send(64), metrics=False).channel_metrics is None


class TestNeutrality:
    def test_results_identical_with_metrics_on(self):
        from repro.core import api

        def prog(env):
            vec = np.arange(100, dtype=np.float64) * (env.rank + 1)
            out = yield from api.allreduce(env, vec)
            return out

        m = Machine(Mesh2D(3, 4), PARAGON)
        off = m.run(prog, trace=True)
        on = m.run(prog, trace=True, metrics=True)
        assert on.time == off.time
        assert on.messages == off.messages
        assert on.events == off.events
        for a, b in zip(off.results, on.results):
            np.testing.assert_array_equal(a, b)
        # message streams identical record for record
        for ma, mb in zip(off.trace.by_completion(), on.trace.by_completion()):
            assert (ma.src, ma.dst, ma.nbytes, ma.t_match, ma.t_complete) \
                == (mb.src, mb.dst, mb.nbytes, mb.t_match, mb.t_complete)


class TestHelpers:
    def _snapshot(self):
        res = Machine(LinearArray(6), UNIT).run(one_send(64), metrics=True)
        return res.channel_metrics

    def test_channels_only_filters_ports(self):
        ch = channels_only(self._snapshot())
        assert ch and all(r[0] == "ch" for r in ch)

    def test_busiest_descending_and_capped(self):
        top = busiest(self._snapshot(), k=2)
        assert len(top) == 2
        assert top[0].busy_time >= top[1].busy_time

    def test_utilization_fraction(self):
        res = Machine(LinearArray(4), UNIT).run(one_send(64), metrics=True)
        u = res.channel_metrics[("ch", 0, 1)].utilization(res.time)
        assert 0.0 < u <= 1.0
        assert res.channel_metrics[("ch", 0, 1)].utilization(0.0) == 0.0

    def test_empty_collector_snapshot(self):
        assert ResourceMetrics().snapshot([("ch", 0, 1)]) == {}
        assert total_contention({}) == 0.0

    def test_stats_for_unseen_id(self):
        st = ResourceMetrics().stats(5, ("ch", 9, 8))
        assert isinstance(st, ChannelStats)
        assert st.busy_time == 0.0 and st.flows == 0
