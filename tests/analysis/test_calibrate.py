"""Tests for machine characterization (the section 11 porting story)."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.analysis import (aggregate_trials, calibrate, fit_alpha_beta,
                            measure_gamma, measure_overhead,
                            measure_pingpong, measure_pingpong_trials,
                            trial_spread)
from repro.sim import (DELTA, LinearArray, Machine, Mesh2D, PARAGON,
                       MachineParams, UNIT)


class TestPingPong:
    def test_halftrip_is_alpha_plus_n_beta(self):
        m = Machine(LinearArray(4), UNIT)
        samples = measure_pingpong(m, [0, 10, 100])
        assert samples == [(0, 1.0), (10, 11.0), (100, 101.0)]

    def test_distance_insensitive(self):
        """Wormhole routing: the far corner costs the same as the
        neighbor."""
        m = Machine(Mesh2D(4, 8), PARAGON)
        near = measure_pingpong(m, [1024], src=0, dst=1)
        far = measure_pingpong(m, [1024], src=0, dst=31)
        assert near[0][1] == pytest.approx(far[0][1])

    def test_same_node_rejected(self):
        m = Machine(LinearArray(2), UNIT)
        with pytest.raises(ValueError):
            measure_pingpong(m, [8], src=0, dst=0)


class TestFitting:
    def test_exact_line(self):
        alpha, beta = fit_alpha_beta([(0, 5.0), (10, 25.0), (20, 45.0)])
        assert alpha == pytest.approx(5.0)
        assert beta == pytest.approx(2.0)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_alpha_beta([(8, 1.0)])

    def test_clamped_non_negative(self):
        alpha, beta = fit_alpha_beta([(0, 1.0), (10, 0.5), (20, 0.0)])
        assert beta == 0.0

    def test_negative_intercept_refits_slope(self):
        """Regression: clamping a negative intercept after the
        unconstrained fit used to keep the slope that had compensated
        for it, biasing beta.  The constrained fit pins the intercept
        at zero and *refits* the slope through the origin."""
        samples = [(0, 0.0), (10, 18.0), (100, 205.0)]
        n = np.array([s[0] for s in samples], dtype=np.float64)
        t = np.array([s[1] for s in samples], dtype=np.float64)
        A = np.vstack([np.ones_like(n), n]).T
        a_unc, b_unc = np.linalg.lstsq(A, t, rcond=None)[0]
        assert a_unc < 0.0  # premise: the free fit crosses below zero

        alpha, beta = fit_alpha_beta(samples)
        assert alpha == 0.0
        # the refit slope is the through-origin least-squares solution,
        # not the biased unconstrained slope
        assert beta == pytest.approx(float(n @ t) / float(n @ n))
        assert beta != pytest.approx(float(b_unc), rel=1e-6)
        # ...and it tracks the generating slope (~2 s/byte) closely
        assert beta == pytest.approx(2.0, rel=0.05)

    def test_all_negative_slope_degrades_to_pure_latency(self):
        alpha, beta = fit_alpha_beta([(0, 3.0), (100, 1.0)])
        assert beta == 0.0
        assert alpha == pytest.approx(2.0)  # mean of the samples
        assert alpha >= 0.0


class TestAggregation:
    def test_aggregators(self):
        vals = [3.0, 1.0, 2.0, 10.0, 2.0]
        assert aggregate_trials(vals, "median") == 2.0
        assert aggregate_trials(vals, "min") == 1.0
        assert aggregate_trials(vals, "mean") == pytest.approx(3.6)

    def test_unknown_aggregator(self):
        with pytest.raises(KeyError, match="unknown aggregator"):
            aggregate_trials([1.0], "mode")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_trials([])

    def test_trial_spread(self):
        assert trial_spread([5.0]) == 0.0
        assert trial_spread([]) == 0.0
        assert trial_spread([1.0, 2.0, 3.0]) == pytest.approx(1.0)
        assert trial_spread([0.0, 0.0]) == 0.0  # zero median guarded

    def test_trials_are_noops_on_deterministic_sim(self):
        m = Machine(Mesh2D(4, 8), PARAGON)
        assert calibrate(m, trials=3) == calibrate(m)
        samples = measure_pingpong_trials(m, [0, 1024], trials=3)
        for s in samples:
            assert len(s.trials) == 3
            assert s.spread == 0.0
            assert s.value == s.trials[0]

    def test_trial_sample_provenance_json(self):
        m = Machine(LinearArray(4), UNIT)
        (s,) = measure_pingpong_trials(m, [10], trials=2)
        d = s.to_json()
        assert d == {"nbytes": 10, "value": 11.0,
                     "trials": [11.0, 11.0], "spread": 0.0}

    def test_trials_must_be_positive(self):
        m = Machine(LinearArray(2), UNIT)
        with pytest.raises(ValueError, match="trials"):
            measure_pingpong_trials(m, [8], trials=0)


class _JitterMachine:
    """The exact simulator plus seeded one-sided timing noise — a stand
    in for a real host where the OS only ever makes you *slower*."""

    def __init__(self, inner, scale, seed):
        self._inner = inner
        self._rng = np.random.default_rng(seed)
        self._scale = scale
        self.nnodes = inner.nnodes
        self.topology = inner.topology

    def run(self, *args, **kwargs):
        res = self._inner.run(*args, **kwargs)
        noise = float(self._rng.exponential(self._scale))
        return SimpleNamespace(time=res.time + noise,
                               results=getattr(res, "results", None))


class TestJitterStability:
    """Regression: single-shot calibration let one scheduler hiccup
    skew the fitted constants; repeated trials with a deterministic
    aggregator keep the fit stable."""

    LENGTHS = [0, 10, 100, 1000]

    def _fit(self, seed, trials, aggregate):
        noisy = _JitterMachine(Machine(LinearArray(2), UNIT),
                               scale=2.0, seed=seed)
        samples = measure_pingpong(noisy, self.LENGTHS, trials=trials,
                                   aggregate=aggregate)
        return fit_alpha_beta(samples)

    def test_min_of_k_recovers_truth(self):
        # UNIT: alpha = 1, beta = 1; jitter scale 2.0 is twice alpha
        alpha, beta = self._fit(seed=7, trials=9, aggregate="min")
        assert alpha == pytest.approx(UNIT.alpha, rel=0.25)
        assert beta == pytest.approx(UNIT.beta, rel=0.05)

    def test_multi_trial_beats_single_shot(self):
        def err(alpha, beta):
            return (abs(alpha - UNIT.alpha) / UNIT.alpha
                    + abs(beta - UNIT.beta) / UNIT.beta)

        seeds = range(5)
        single = [err(*self._fit(s, trials=1, aggregate="min"))
                  for s in seeds]
        multi = [err(*self._fit(s, trials=9, aggregate="min"))
                 for s in seeds]
        assert max(multi) < max(single)
        assert sum(multi) < sum(single)

    def test_median_aggregate_stable_across_seeds(self):
        fits = [self._fit(seed, trials=9, aggregate="median")
                for seed in range(4)]
        alphas = [a for a, _ in fits]
        betas = [b for _, b in fits]
        assert max(alphas) - min(alphas) < 1.5  # jitter scale is 2.0
        assert max(betas) == pytest.approx(min(betas), rel=0.1)
        # dispersion is recorded on every sample
        noisy = _JitterMachine(Machine(LinearArray(2), UNIT),
                               scale=2.0, seed=11)
        samples = measure_pingpong_trials(noisy, [0], trials=5)
        assert samples[0].spread > 0.0


class TestFullCalibration:
    @pytest.mark.parametrize("true", [PARAGON, DELTA])
    def test_recovers_presets(self, true):
        machine = Machine(Mesh2D(4, 8), true)
        fitted = calibrate(machine)
        assert fitted.alpha == pytest.approx(true.alpha, rel=1e-6)
        assert fitted.beta == pytest.approx(true.beta, rel=1e-6)
        assert fitted.gamma == pytest.approx(true.gamma, rel=1e-6)
        assert fitted.sw_overhead == pytest.approx(true.sw_overhead,
                                                   rel=1e-6)
        assert fitted.link_capacity == true.link_capacity

    def test_recovers_custom_machine(self):
        true = MachineParams(alpha=7e-5, beta=2e-8, gamma=3e-8,
                             sw_overhead=9e-6, link_capacity=2.0)
        fitted = calibrate(Machine(Mesh2D(6, 6), true))
        assert fitted.alpha == pytest.approx(true.alpha, rel=1e-6)
        assert fitted.beta == pytest.approx(true.beta, rel=1e-6)
        assert fitted.link_capacity == 2.0

    def test_gamma_and_overhead_probes(self):
        m = Machine(LinearArray(2), UNIT.with_(gamma=0.25,
                                               sw_overhead=3.0))
        assert measure_gamma(m, 100) == pytest.approx(0.25)
        assert measure_overhead(m, 10) == pytest.approx(3.0)

    def test_fitted_params_drive_identical_selection(self):
        """The point of the exercise: the selector fed with fitted
        parameters chooses the same strategies as with the truth."""
        from repro.core import Selector
        true = PARAGON
        fitted = calibrate(Machine(Mesh2D(4, 8), true))
        st = Selector(true, itemsize=8)
        sf = Selector(fitted, itemsize=8)
        for n in (1, 512, 8192, 131072):
            a = st.best("bcast", 32, n, mesh_shape=(4, 8))
            b = sf.best("bcast", 32, n, mesh_shape=(4, 8))
            # exact ties between equal-cost strategies may break either
            # way under 1e-15 parameter noise; the *predicted cost* of
            # the chosen strategies must agree
            assert b.cost == pytest.approx(a.cost, rel=1e-9), n
