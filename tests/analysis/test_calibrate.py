"""Tests for machine characterization (the section 11 porting story)."""

import numpy as np
import pytest

from repro.analysis import (calibrate, fit_alpha_beta, measure_gamma,
                            measure_overhead, measure_pingpong)
from repro.sim import (DELTA, LinearArray, Machine, Mesh2D, PARAGON,
                       MachineParams, UNIT)


class TestPingPong:
    def test_halftrip_is_alpha_plus_n_beta(self):
        m = Machine(LinearArray(4), UNIT)
        samples = measure_pingpong(m, [0, 10, 100])
        assert samples == [(0, 1.0), (10, 11.0), (100, 101.0)]

    def test_distance_insensitive(self):
        """Wormhole routing: the far corner costs the same as the
        neighbor."""
        m = Machine(Mesh2D(4, 8), PARAGON)
        near = measure_pingpong(m, [1024], src=0, dst=1)
        far = measure_pingpong(m, [1024], src=0, dst=31)
        assert near[0][1] == pytest.approx(far[0][1])

    def test_same_node_rejected(self):
        m = Machine(LinearArray(2), UNIT)
        with pytest.raises(ValueError):
            measure_pingpong(m, [8], src=0, dst=0)


class TestFitting:
    def test_exact_line(self):
        alpha, beta = fit_alpha_beta([(0, 5.0), (10, 25.0), (20, 45.0)])
        assert alpha == pytest.approx(5.0)
        assert beta == pytest.approx(2.0)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_alpha_beta([(8, 1.0)])

    def test_clamped_non_negative(self):
        alpha, beta = fit_alpha_beta([(0, 1.0), (10, 0.5), (20, 0.0)])
        assert beta == 0.0


class TestFullCalibration:
    @pytest.mark.parametrize("true", [PARAGON, DELTA])
    def test_recovers_presets(self, true):
        machine = Machine(Mesh2D(4, 8), true)
        fitted = calibrate(machine)
        assert fitted.alpha == pytest.approx(true.alpha, rel=1e-6)
        assert fitted.beta == pytest.approx(true.beta, rel=1e-6)
        assert fitted.gamma == pytest.approx(true.gamma, rel=1e-6)
        assert fitted.sw_overhead == pytest.approx(true.sw_overhead,
                                                   rel=1e-6)
        assert fitted.link_capacity == true.link_capacity

    def test_recovers_custom_machine(self):
        true = MachineParams(alpha=7e-5, beta=2e-8, gamma=3e-8,
                             sw_overhead=9e-6, link_capacity=2.0)
        fitted = calibrate(Machine(Mesh2D(6, 6), true))
        assert fitted.alpha == pytest.approx(true.alpha, rel=1e-6)
        assert fitted.beta == pytest.approx(true.beta, rel=1e-6)
        assert fitted.link_capacity == 2.0

    def test_gamma_and_overhead_probes(self):
        m = Machine(LinearArray(2), UNIT.with_(gamma=0.25,
                                               sw_overhead=3.0))
        assert measure_gamma(m, 100) == pytest.approx(0.25)
        assert measure_overhead(m, 10) == pytest.approx(3.0)

    def test_fitted_params_drive_identical_selection(self):
        """The point of the exercise: the selector fed with fitted
        parameters chooses the same strategies as with the truth."""
        from repro.core import Selector
        true = PARAGON
        fitted = calibrate(Machine(Mesh2D(4, 8), true))
        st = Selector(true, itemsize=8)
        sf = Selector(fitted, itemsize=8)
        for n in (1, 512, 8192, 131072):
            a = st.best("bcast", 32, n, mesh_shape=(4, 8))
            b = sf.best("bcast", 32, n, mesh_shape=(4, 8))
            # exact ties between equal-cost strategies may break either
            # way under 1e-15 parameter noise; the *predicted cost* of
            # the chosen strategies must agree
            assert b.cost == pytest.approx(a.cost, rel=1e-9), n
