"""Tests for the consolidated report generator."""

import os

import pytest

from repro.analysis.report import build_report, main, md_table
from repro.analysis.tables import write_csv


class TestMdTable:
    def test_shape(self):
        text = md_table(["a", "b"], [[1, 2], [3, 4]])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"


class TestBuildReport:
    def test_empty_dir(self, tmp_path):
        text = build_report(str(tmp_path))
        assert "no benchmark artifacts" in text

    def test_with_table3(self, tmp_path):
        write_csv(os.path.join(str(tmp_path), "table3_nx_vs_icc.csv"),
                  ["operation", "bytes", "nx_seconds", "icc_seconds",
                   "ratio"],
                  [["broadcast", 8, 0.001, 0.0011, 0.91],
                   ["broadcast", 1048576, 0.5, 0.06, 8.3]])
        text = build_report(str(tmp_path))
        assert "Table 3" in text
        assert "0.92" in text       # paper reference joined in
        assert "8.3" in text

    def test_with_sweep(self, tmp_path):
        write_csv(os.path.join(str(tmp_path), "fig4_collect.csv"),
                  ["algorithm", "bytes", "seconds"],
                  [["auto", 8, 0.001], ["auto", 64, 0.002],
                   ["short", 8, 0.003], ["short", 64, 0.004]])
        text = build_report(str(tmp_path))
        assert "Figure 4 (left)" in text
        assert "| 8 | 0.001 | 0.003 |" in text

    def test_main_writes_file(self, tmp_path):
        out = str(tmp_path / "r.md")
        assert main([str(tmp_path), out]) == 0
        assert os.path.exists(out)


class TestTraceMode:
    def test_trace_cli_writes_chrome_json(self, tmp_path, capsys):
        import json
        from repro.analysis.report import main
        out = tmp_path / "bcast.trace.json"
        rc = main(["--trace", "bcast", "--p", "8", "--bytes", "256",
                   "--params", "UNIT", "--out", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]
        text = capsys.readouterr().out
        assert "critical path" in text
        assert "busiest resources" in text

    def test_trace_scenario_all_ops(self):
        from repro.analysis.report import TRACE_OPS, run_traced_scenario
        for op in TRACE_OPS:
            res = run_traced_scenario(op, p=6, nbytes=64,
                                      params_name="UNIT")
            assert res.trace.closed_spans()
            assert res.channel_metrics
