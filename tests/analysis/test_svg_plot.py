"""Tests for the SVG figure writer."""

import os

import pytest

from repro.analysis import Series, render_svg, write_svg


def sample_series():
    return [Series("hybrid", [8, 64, 512, 4096],
                   [1e-4, 2e-4, 8e-4, 5e-3]),
            Series("NX", [8, 64, 512, 4096],
                   [9e-5, 3e-4, 2e-3, 2e-2])]


class TestRenderSvg:
    def test_is_valid_xmlish_document(self):
        svg = render_svg(sample_series(), title="demo")
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert svg.count("<polyline") == 2

    def test_contains_labels_and_legend(self):
        svg = render_svg(sample_series(), title="T & Co",
                         xlabel="bytes", ylabel="secs")
        assert "T &amp; Co" in svg     # escaped
        assert ">hybrid</text>" in svg
        assert ">NX</text>" in svg
        assert "bytes" in svg and "secs" in svg

    def test_decade_gridlines(self):
        svg = render_svg(sample_series())
        # x decades 10,100,1000 at least
        assert ">10<" in svg and ">100<" in svg and ">1K<" in svg

    def test_empty(self):
        assert "no data" in render_svg([])

    def test_markers_differ_per_series(self):
        svg = render_svg(sample_series())
        assert "<circle" in svg and "<rect" in svg

    def test_parses_as_xml(self):
        import xml.etree.ElementTree as ET
        root = ET.fromstring(render_svg(sample_series(), title="x"))
        assert root.tag.endswith("svg")


class TestWriteSvg:
    def test_writes_file(self, tmp_path):
        path = str(tmp_path / "figs" / "out.svg")
        write_svg(path, sample_series(), title="t")
        content = open(path).read()
        assert content.startswith("<svg")
