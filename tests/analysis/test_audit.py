"""Tests for the selection-regret sweep (repro.analysis.audit) and its
``python -m repro.analysis.report --audit`` CLI."""

import json

import pytest

from repro.analysis import audit as sweep

#: a one-cell grid keeps the unit tests fast; the smoke/full grids run
#: in CI (audit-smoke job)
TINY_GRID = {
    "operations": ("bcast",),
    "shapes": (("line", 7),),
    "lengths": (256,),
}


class TestCellEnvironment:
    def test_line(self):
        topo, group, p = sweep.cell_environment(("line", 9))
        assert topo.nnodes == 9 and group is None and p == 9

    def test_mesh(self):
        topo, group, p = sweep.cell_environment(("mesh", 3, 4))
        assert topo.nnodes == 12 and group is None and p == 12

    def test_row_and_col_groups_live_on_the_mesh(self):
        topo, row, p = sweep.cell_environment(("row", 4, 5))
        assert p == 5 and len(row) == 5
        assert all(0 <= node < topo.nnodes for node in row)
        topo, col, p = sweep.cell_environment(("col", 4, 5))
        assert p == 4 and len(col) == 4

    def test_unknown_shape(self):
        with pytest.raises(KeyError):
            sweep.cell_environment(("blob", 3))


class TestAuditCell:
    @pytest.fixture(scope="class")
    def cell(self):
        from repro.sim.params import PARAGON
        return sweep.audit_cell("bcast", ("line", 7), 256, PARAGON)

    def test_every_candidate_simulated(self, cell):
        assert len(cell.candidates) >= 2
        assert all(c.measured > 0 for c in cell.candidates)

    def test_chosen_is_among_candidates(self, cell):
        assert cell.chosen in {c.strategy for c in cell.candidates}

    def test_regret_at_least_one(self, cell):
        assert cell.regret >= 1.0 - 1e-12
        assert cell.best_measured <= cell.chosen_measured + 1e-18

    def test_model_error_near_one(self, cell):
        # conflict-priced linear array: model within ~15% of simulation
        for c in cell.candidates:
            assert c.ratio == pytest.approx(1.0, rel=0.15)

    def test_json_shape(self, cell):
        blob = json.loads(json.dumps(cell.to_json()))
        assert blob["operation"] == "bcast" and blob["p"] == 7
        assert len(blob["candidates"]) == len(cell.candidates)

    def test_mesh_cell_gets_mesh_candidates(self):
        from repro.sim.params import PARAGON
        cell = sweep.audit_cell("bcast", ("col", 4, 5), 256, PARAGON)
        assert cell.mesh_shape is not None
        assert cell.p == 4


class TestBuildAndCheck:
    @pytest.fixture(scope="class")
    def report(self):
        return sweep.build_audit(TINY_GRID, "paragon")

    def test_report_sections(self, report):
        assert set(report) >= {"cells", "regret", "model_error",
                               "conflict_freedom", "drift", "params"}
        assert report["grid"] == "custom"
        assert len(report["cells"]) == 1

    def test_conflict_section_covers_all_blocks_and_non_pow2(self, report):
        blocks = {v["block"] for v in report["conflict_freedom"]}
        assert blocks == set(sweep_blocks())
        ps = {v["p"] for v in report["conflict_freedom"]}
        assert any(p & (p - 1) for p in ps)  # a non-power-of-two p
        assert all(v["ok"] for v in report["conflict_freedom"])

    def test_check_passes(self, report):
        assert sweep.check(report) == []

    def test_check_fails_on_contention(self, report):
        bad = json.loads(json.dumps(report))
        bad["conflict_freedom"][0]["ok"] = False
        bad["conflict_freedom"][0]["contended"] = [
            {"channel": ["ch", 1, 2], "max_concurrent": 2,
             "sharing_factor": 2.0, "busy_time": 1.0, "flows": []}]
        failures = sweep.check(bad)
        assert any("conflict-freedom violated" in f for f in failures)

    def test_check_fails_on_high_regret(self, report):
        bad = json.loads(json.dumps(report))
        bad["regret"]["median"] = 1.5
        failures = sweep.check(bad)
        assert any("regret" in f for f in failures)

    def test_render_mentions_the_essentials(self, report):
        text = sweep.render(report)
        assert "regret" in text
        assert "conflict-freedom" in text
        assert "drift" in text

    def test_write_report(self, report, tmp_path):
        path = str(tmp_path / "AUDIT_model.json")
        sweep.write_report(report, path)
        with open(path) as f:
            assert json.load(f)["params"] == "paragon"


def sweep_blocks():
    from repro.obs.audit import BUILDING_BLOCKS
    return BUILDING_BLOCKS


class TestReportCLI:
    def test_audit_flag_routes_to_sweep(self, tmp_path, monkeypatch,
                                        capsys):
        from repro.analysis import report as report_mod
        monkeypatch.setattr(sweep, "GRIDS",
                            dict(sweep.GRIDS, tiny=TINY_GRID))
        out = str(tmp_path / "AUDIT_model.json")
        rc = report_mod.main(["--audit", "--grid", "tiny", "--check",
                              "--quiet", "--out", out])
        assert rc == 0
        text = capsys.readouterr().out
        assert "check passed" in text
        with open(out) as f:
            blob = json.load(f)
        assert blob["grid"] == "tiny"
        assert sweep.check(blob) == []

    def test_grids_are_well_formed(self):
        for name, grid in sweep.GRIDS.items():
            assert set(grid) == {"operations", "shapes", "lengths"}
            for shape in grid["shapes"]:
                sweep.cell_environment(shape)  # must not raise
            # the regret grids must include a non-power-of-two p
            ps = [sweep.cell_environment(s)[2] for s in grid["shapes"]]
            assert any(p & (p - 1) for p in ps), name
