"""Tests for the deterministic multiprocess sweep driver
(:mod:`repro.analysis.parallel`) and its consumers.

The driver's whole contract is two-fold — parallel sweeps are
*byte-identical* to serial ones (fixed shard inputs, submission-order
merge), and failures are *typed and prompt* (a raising shard or a dead
worker process surfaces as :class:`ShardError`, never a hang or a bare
``BrokenProcessPool``).  Both halves are pinned here, including
end-to-end: the regret sweep grid with 1 vs N workers must serialize to
byte-identical ``AUDIT_model.json`` payloads.
"""

import json
import os

import pytest

from repro.analysis import audit
from repro.analysis.parallel import ShardError, default_workers, parallel_map

#: grid small enough for a unit test, big enough to shard meaningfully
SMALL_GRID = {
    "operations": ("bcast", "reduce_scatter"),
    "shapes": (("line", 7), ("mesh", 3, 4)),
    "lengths": (64, 512),
}


# ----------------------------------------------------------------------
# picklable top-level workers for the pool
# ----------------------------------------------------------------------


def _square(x):
    return x * x


def _fail_on_3(x):
    if x == 3:
        raise ValueError("poisoned shard")
    return x


def _die_on_2(x):
    if x == 2:
        os._exit(17)  # hard death: no exception, no cleanup
    return x


def _slow_identity(x):
    import time
    time.sleep(0.05 * x)
    return x


class TestParallelMap:
    def test_matches_serial_map(self):
        items = list(range(20))
        assert parallel_map(_square, items, workers=4) \
            == [x * x for x in items]

    def test_order_preserved_despite_completion_order(self):
        # later items finish *first* (sleep scales with value); the
        # merge must still be submission order
        items = [3, 2, 1, 0]
        assert parallel_map(_slow_identity, items, workers=4) == items

    def test_workers_one_is_serial_inline(self):
        calls = []

        def fn(x):  # closures are fine serially (no pickling)
            calls.append(x)
            return -x

        assert parallel_map(fn, [1, 2, 3], workers=1) == [-1, -2, -3]
        assert calls == [1, 2, 3]

    def test_empty_items(self):
        assert parallel_map(_square, [], workers=4) == []

    def test_raising_shard_is_typed(self):
        with pytest.raises(ShardError) as ei:
            parallel_map(_fail_on_3, [1, 2, 3, 4], workers=2)
        assert ei.value.index == 2
        assert ei.value.item == 3
        assert isinstance(ei.value.cause, ValueError)
        assert "poisoned" in str(ei.value)

    def test_raising_shard_is_typed_serially_too(self):
        with pytest.raises(ShardError) as ei:
            parallel_map(_fail_on_3, [3], workers=1)
        assert ei.value.index == 0

    def test_dead_worker_surfaces_not_hangs(self):
        """A worker that dies outright (os._exit, the stand-in for a
        segfault or OOM kill) must surface as ShardError promptly
        instead of deadlocking the sweep."""
        with pytest.raises(ShardError) as ei:
            parallel_map(_die_on_2, [1, 2, 3, 4], workers=2,
                         timeout=60.0)
        assert "failed" in str(ei.value)

    def test_default_workers_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_workers() == 3
        monkeypatch.setenv("REPRO_WORKERS", "bogus")
        assert default_workers() >= 1


class TestAuditSweepDeterminism:
    def test_parallel_sweep_equals_serial(self):
        from repro.sim.params import preset
        serial = audit.run_sweep(SMALL_GRID, preset("paragon"))
        parallel = audit.run_sweep_parallel(SMALL_GRID, "paragon",
                                            workers=4)
        assert parallel == serial

    def test_audit_payload_byte_identical_1_vs_n(self, tmp_path):
        """The full AUDIT_model.json payload — not just the cells —
        serialized with 1 worker and with N workers must be
        byte-identical."""
        paths = {}
        for workers in (1, 4):
            report = audit.build_audit(SMALL_GRID, "paragon",
                                       workers=workers)
            p = tmp_path / f"audit_w{workers}.json"
            audit.write_report(report, str(p))
            paths[workers] = p.read_bytes()
        assert paths[1] == paths[4]

    def test_grid_tasks_order_is_canonical(self):
        tasks = audit.grid_tasks(SMALL_GRID)
        assert tasks == [
            (op, shape, n)
            for op in SMALL_GRID["operations"]
            for shape in SMALL_GRID["shapes"]
            for n in SMALL_GRID["lengths"]]


class TestChaosSweepDeterminism:
    def test_parallel_chaos_slice_equals_serial(self):
        from benchmarks.chaos.cases import GRIDS, run_case_entry
        cases = GRIDS["smoke"][:6]
        serial = [run_case_entry(c) for c in cases]
        parallel = parallel_map(run_case_entry, cases, workers=3)
        assert parallel == serial
