"""Tests for the analysis harness: sweeps, tables, ASCII figures."""

import os

import numpy as np
import pytest

from repro.analysis import (Series, byte_grid, elements_for, format_table,
                            human_bytes, plot_series, run_operation,
                            series_to_rows, sweep_operation, write_csv)
from repro.sim import LinearArray, Machine, Mesh2D, PARAGON, UNIT


class TestSeries:
    def test_add_and_lookup(self):
        s = Series("x")
        s.add(8, 0.5)
        s.add(16, 1.0)
        assert s.time_at(16) == 1.0
        assert s.bandwidth() == [16.0, 16.0]

    def test_byte_grid(self):
        grid = byte_grid(8, 1 << 20)
        assert grid[0] == 8
        assert grid[-1] == 1 << 20
        assert all(b > a for a, b in zip(grid, grid[1:]))

    def test_elements_for(self):
        assert elements_for(64) == 8
        assert elements_for(8) == 1
        assert elements_for(1) == 1   # floor at one element


class TestRunOperation:
    machine = Machine(LinearArray(6), UNIT)

    @pytest.mark.parametrize("op", ["bcast", "collect", "allreduce",
                                    "reduce", "reduce_scatter"])
    def test_all_operations_self_check(self, op):
        result = run_operation(self.machine, op, 96, algorithm="auto")
        assert result.time > 0

    def test_algorithms_vary_time(self):
        t_short = run_operation(self.machine, "bcast", 4096,
                                algorithm="short").time
        t_long = run_operation(self.machine, "bcast", 4096,
                               algorithm="long").time
        assert t_short != t_long

    def test_sweep_produces_labelled_series(self):
        series = sweep_operation(self.machine, "bcast", [8, 64],
                                 {"short": "short", "long": "long"})
        assert [s.label for s in series] == ["short", "long"]
        assert all(len(s.lengths) == 2 for s in series)

    def test_sweep_accepts_custom_program(self):
        def custom(env, n):
            yield env.delay(1.0)

        series = sweep_operation(self.machine, "bcast", [8],
                                 {"noop": custom})
        assert series[0].times == [1.0]


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 0.001]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_human_bytes(self):
        assert human_bytes(8) == "8"
        assert human_bytes(64 * 1024) == "64K"
        assert human_bytes(1 << 20) == "1M"
        assert human_bytes(1000) == "1000"

    def test_write_csv(self, tmp_path):
        path = str(tmp_path / "sub" / "out.csv")
        write_csv(path, ["x", "y"], [[1, 2], [3, 4]])
        content = open(path).read().strip().splitlines()
        assert content == ["x,y", "1,2", "3,4"]


class TestAsciiPlot:
    def test_plot_contains_marks_and_legend(self):
        s1 = Series("alpha", [8, 64, 512], [1e-4, 1e-3, 1e-2])
        s2 = Series("beta", [8, 64, 512], [2e-4, 2e-3, 2e-2])
        text = plot_series([s1, s2], title="demo")
        assert "demo" in text
        assert "o = alpha" in text and "x = beta" in text
        assert "message length" in text

    def test_empty(self):
        assert plot_series([]) == "(no data)"

    def test_series_to_rows(self):
        s = Series("a", [8, 16], [0.1, 0.2])
        assert series_to_rows([s]) == [["a", 8, 0.1], ["a", 16, 0.2]]
