"""Critical-path extraction over the message-dependency graph."""

import math

import numpy as np
import pytest

from repro.analysis.critpath import (CritSpan, critical_path,
                                     critical_path_summary,
                                     render_critical_path)
from repro.core import api
from repro.sim import LinearArray, Machine, UNIT
from repro.sim.trace import Tracer


def mst_bcast_run(p, n=4):
    def prog(env):
        buf = np.arange(n, dtype=np.float64) if env.rank == 0 else None
        yield from api.bcast(env, buf, root=0, total=n, algorithm="short")

    return Machine(LinearArray(p), UNIT).run(prog, trace=True)


class TestMSTBcast:
    @pytest.mark.parametrize("p", [2, 3, 5, 8, 13, 16, 30])
    def test_path_has_ceil_log2_p_hops(self, p):
        # Acceptance invariant: the MST broadcast's critical path is the
        # root-to-deepest-leaf chain, one hop per tree level.
        run = mst_bcast_run(p)
        cp = critical_path(run.trace, alpha=UNIT.alpha)
        assert len(cp) == math.ceil(math.log2(p))

    def test_path_is_a_dependency_chain(self):
        run = mst_bcast_run(16)
        cp = critical_path(run.trace, alpha=UNIT.alpha)
        for a, b in zip(cp, cp[1:]):
            assert a.t_end <= b.t_start
            # consecutive hops share the relaying rank
            assert {a.src, a.dst} & {b.src, b.dst}
        assert cp[0].src == 0  # starts at the root

    def test_path_ends_at_last_completion(self):
        run = mst_bcast_run(13)
        cp = critical_path(run.trace, alpha=UNIT.alpha)
        last = max(m.t_complete for m in run.trace.completed())
        assert cp[-1].t_end == last

    def test_alpha_beta_attribution(self):
        run = mst_bcast_run(8, n=4)
        cp = critical_path(run.trace, alpha=UNIT.alpha)
        for s in cp:
            assert s.alpha_time == UNIT.alpha
            assert s.beta_time == pytest.approx(s.duration - UNIT.alpha)
            assert s.duration > 0

    def test_zero_alpha_attributes_all_to_beta(self):
        run = mst_bcast_run(8)
        cp = critical_path(run.trace)
        assert all(s.alpha_time == 0.0 for s in cp)
        assert all(s.beta_time == pytest.approx(s.duration) for s in cp)


class TestSummary:
    def test_summary_accounts_for_total_time(self):
        run = mst_bcast_run(16, n=8)
        cp = critical_path(run.trace, alpha=UNIT.alpha)
        summ = critical_path_summary(cp)
        assert summ["hops"] == len(cp)
        assert summ["time"] == cp[-1].t_end
        # transfers + gaps tile the path end to end
        assert (summ["alpha_time"] + summ["beta_time"] + summ["wait_time"]
                == pytest.approx(summ["time"]))
        assert 0.0 < summ["coverage"] <= 1.0

    def test_empty(self):
        assert critical_path(Tracer()) == []
        summ = critical_path_summary([])
        assert summ["hops"] == 0 and summ["time"] == 0.0

    def test_render(self):
        run = mst_bcast_run(8)
        text = render_critical_path(critical_path(run.trace, alpha=1.0))
        assert "hop 1:" in text and "total" in text
        assert render_critical_path([]) == "(empty critical path)"


class TestPipelineChain:
    def test_linear_relay_path_covers_every_hop(self):
        # 0 -> 1 -> 2 -> 3 store-and-forward relay: every message is on
        # the critical path.
        def prog(env):
            data = np.zeros(16, dtype=np.uint8)
            if env.rank == 0:
                yield env.send(1, data)
            elif env.rank < 3:
                got = yield env.recv(env.rank - 1)
                yield env.send(env.rank + 1, got)
            else:
                yield env.recv(2)

        run = Machine(LinearArray(4), UNIT).run(prog, trace=True)
        cp = critical_path(run.trace, alpha=UNIT.alpha)
        assert [(s.src, s.dst) for s in cp] == [(0, 1), (1, 2), (2, 3)]
        assert all(isinstance(s, CritSpan) for s in cp)

    def test_wait_time_captures_compute_gap(self):
        def prog(env):
            data = np.zeros(16, dtype=np.uint8)
            if env.rank == 0:
                yield env.send(1, data)
            elif env.rank == 1:
                got = yield env.recv(0)
                yield env.delay(7.0)
                yield env.send(2, got)
            else:
                yield env.recv(1)

        run = Machine(LinearArray(3), UNIT).run(prog, trace=True)
        cp = critical_path(run.trace, alpha=UNIT.alpha)
        assert len(cp) == 2
        assert cp[1].wait_time == pytest.approx(7.0)
