"""Tests for the trace timeline renderer."""

import numpy as np
import pytest

from repro.analysis import render_timeline, utilization
from repro.core import api
from repro.core.context import CollContext
from repro.extensions import pipelined_bcast
from repro.sim import LinearArray, Machine, UNIT


def traced(p, prog, *args):
    machine = Machine(LinearArray(p), UNIT, trace=True)
    return machine.run(prog, *args)


class TestRenderTimeline:
    def test_simple_send_shows_directions(self):
        def prog(env):
            if env.rank == 0:
                yield env.send(1, np.zeros(100, dtype=np.uint8))
            elif env.rank == 1:
                yield env.recv(0)

        run = traced(3, prog)
        text = render_timeline(run.trace, 3, width=20)
        lines = text.splitlines()
        assert ">" in lines[1] and "<" not in lines[1]   # node 0 sends
        assert "<" in lines[2] and ">" not in lines[2]   # node 1 recvs
        assert set(lines[3].split("|")[1]) == {"."}      # node 2 idle

    def test_simultaneous_send_recv_marked_x(self):
        def prog(env):
            p = env.nranks
            s = env.isend((env.rank + 1) % p, np.zeros(64, dtype=np.uint8))
            r = env.irecv((env.rank - 1) % p)
            yield env.waitall(s, r)

        run = traced(4, prog)
        text = render_timeline(run.trace, 4, width=16)
        for line in text.splitlines()[1:]:
            assert "x" in line

    def test_empty_trace(self):
        def prog(env):
            yield env.delay(1)

        run = traced(2, prog)
        assert render_timeline(run.trace, 2) == "(no traffic)"

    def test_pipeline_staircase_visible(self):
        """The pipelined broadcast's wavefront: each node starts
        strictly later than its predecessor."""
        n, k = 240, 6

        def prog(env):
            ctx = CollContext(env)
            buf = np.arange(n, dtype=np.float64) if env.rank == 0 else None
            return (yield from pipelined_bcast(ctx, buf, root=0,
                                               total=n, chunks=k))

        run = traced(5, prog)
        firsts = {}
        for rec in run.trace.completed():
            firsts.setdefault(rec.src, rec.t_match)
            firsts[rec.src] = min(firsts[rec.src], rec.t_match)
        starts = [firsts[i] for i in range(4)]  # node 4 never sends
        assert starts == sorted(starts)
        assert starts[0] < starts[1] < starts[2]

    def test_node_subset(self):
        def prog(env):
            if env.rank == 0:
                yield env.send(1, np.zeros(8, dtype=np.uint8))
            elif env.rank == 1:
                yield env.recv(0)

        run = traced(4, prog)
        text = render_timeline(run.trace, 4, nodes=[1])
        assert "node 1" in text
        assert "node 0" not in text


class TestUtilization:
    def test_idle_node_zero(self):
        def prog(env):
            if env.rank == 0:
                yield env.send(1, np.zeros(50, dtype=np.uint8))
            elif env.rank == 1:
                yield env.recv(0)

        run = traced(3, prog)
        u = utilization(run.trace, 3)
        assert u[2] == 0.0
        assert u[0] == pytest.approx(1.0)

    def test_bucket_collect_is_fully_utilized(self):
        """Every rank sends and receives in every round: utilization
        near 1 everywhere — the bucket algorithms' selling point."""
        from repro.core.primitives_long import bucket_collect

        def prog(env):
            ctx = CollContext(env)
            return (yield from bucket_collect(ctx, np.zeros(64)))

        run = traced(6, prog)
        u = utilization(run.trace, 6)
        assert all(v > 0.9 for v in u)

    def test_mst_bcast_has_idle_tail_ranks(self):
        """Tree algorithms leave late leaves mostly idle — the contrast
        that motivates the hybrids."""
        def prog(env):
            buf = np.zeros(512) if env.rank == 0 else None
            out = yield from api.bcast(env, buf, total=512,
                                       algorithm="short")
            return out is not None

        run = traced(16, prog)
        u = utilization(run.trace, 16)
        assert min(u) < 0.5 < max(u)


class TestDegenerateTimeline:
    def _instant_tracer(self, t=5.0):
        # every transfer rendezvous and completes at one instant, so the
        # run has zero time span (zero-byte traffic under an alpha=0
        # model): hi == lo in the renderer
        from repro.sim.trace import MessageRecord, Tracer
        tr = Tracer()
        for src, dst in [(0, 1), (2, 3)]:
            tr.message(MessageRecord(src=src, dst=dst, tag=0, nbytes=0.0,
                                     t_send_post=t, t_recv_post=t,
                                     t_match=t, t_complete=t))
        return tr

    def test_zero_span_run_still_shows_activity(self):
        # regression: hi == lo used to bin every interval to no columns,
        # rendering communicating nodes as all-idle lanes
        text = render_timeline(self._instant_tracer(), 4, width=16)
        lines = text.splitlines()
        assert ">" in lines[1]   # node 0 sent
        assert "<" in lines[2]   # node 1 received
        assert ">" in lines[3] and "<" in lines[4]

    def test_zero_span_single_column_only(self):
        text = render_timeline(self._instant_tracer(), 4, width=16)
        lane0 = text.splitlines()[1].split("|")[1]
        assert lane0[0] == ">" and set(lane0[1:]) == {"."}

    def test_zero_width_does_not_crash(self):
        text = render_timeline(self._instant_tracer(), 4, width=0)
        assert "t = 5" in text

    def test_instantaneous_transfer_in_finite_run_gets_a_column(self):
        from repro.sim.trace import MessageRecord, Tracer
        tr = Tracer()
        tr.message(MessageRecord(src=0, dst=1, tag=0, nbytes=8.0,
                                 t_send_post=0.0, t_recv_post=0.0,
                                 t_match=0.0, t_complete=10.0))
        tr.message(MessageRecord(src=2, dst=3, tag=0, nbytes=0.0,
                                 t_send_post=5.0, t_recv_post=5.0,
                                 t_match=5.0, t_complete=5.0))
        text = render_timeline(tr, 4, width=10)
        lane2 = text.splitlines()[3].split("|")[1]
        assert lane2.count(">") == 1

    def test_zero_span_utilization_is_zero(self):
        assert utilization(self._instant_tracer(), 4) == [0.0] * 4
