"""Tests for the trace timeline renderer."""

import numpy as np
import pytest

from repro.analysis import render_timeline, utilization
from repro.core import api
from repro.core.context import CollContext
from repro.extensions import pipelined_bcast
from repro.sim import LinearArray, Machine, UNIT


def traced(p, prog, *args):
    machine = Machine(LinearArray(p), UNIT, trace=True)
    return machine.run(prog, *args)


class TestRenderTimeline:
    def test_simple_send_shows_directions(self):
        def prog(env):
            if env.rank == 0:
                yield env.send(1, np.zeros(100, dtype=np.uint8))
            elif env.rank == 1:
                yield env.recv(0)

        run = traced(3, prog)
        text = render_timeline(run.trace, 3, width=20)
        lines = text.splitlines()
        assert ">" in lines[1] and "<" not in lines[1]   # node 0 sends
        assert "<" in lines[2] and ">" not in lines[2]   # node 1 recvs
        assert set(lines[3].split("|")[1]) == {"."}      # node 2 idle

    def test_simultaneous_send_recv_marked_x(self):
        def prog(env):
            p = env.nranks
            s = env.isend((env.rank + 1) % p, np.zeros(64, dtype=np.uint8))
            r = env.irecv((env.rank - 1) % p)
            yield env.waitall(s, r)

        run = traced(4, prog)
        text = render_timeline(run.trace, 4, width=16)
        for line in text.splitlines()[1:]:
            assert "x" in line

    def test_empty_trace(self):
        def prog(env):
            yield env.delay(1)

        run = traced(2, prog)
        assert render_timeline(run.trace, 2) == "(no traffic)"

    def test_pipeline_staircase_visible(self):
        """The pipelined broadcast's wavefront: each node starts
        strictly later than its predecessor."""
        n, k = 240, 6

        def prog(env):
            ctx = CollContext(env)
            buf = np.arange(n, dtype=np.float64) if env.rank == 0 else None
            return (yield from pipelined_bcast(ctx, buf, root=0,
                                               total=n, chunks=k))

        run = traced(5, prog)
        firsts = {}
        for rec in run.trace.completed():
            firsts.setdefault(rec.src, rec.t_match)
            firsts[rec.src] = min(firsts[rec.src], rec.t_match)
        starts = [firsts[i] for i in range(4)]  # node 4 never sends
        assert starts == sorted(starts)
        assert starts[0] < starts[1] < starts[2]

    def test_node_subset(self):
        def prog(env):
            if env.rank == 0:
                yield env.send(1, np.zeros(8, dtype=np.uint8))
            elif env.rank == 1:
                yield env.recv(0)

        run = traced(4, prog)
        text = render_timeline(run.trace, 4, nodes=[1])
        assert "node 1" in text
        assert "node 0" not in text


class TestUtilization:
    def test_idle_node_zero(self):
        def prog(env):
            if env.rank == 0:
                yield env.send(1, np.zeros(50, dtype=np.uint8))
            elif env.rank == 1:
                yield env.recv(0)

        run = traced(3, prog)
        u = utilization(run.trace, 3)
        assert u[2] == 0.0
        assert u[0] == pytest.approx(1.0)

    def test_bucket_collect_is_fully_utilized(self):
        """Every rank sends and receives in every round: utilization
        near 1 everywhere — the bucket algorithms' selling point."""
        from repro.core.primitives_long import bucket_collect

        def prog(env):
            ctx = CollContext(env)
            return (yield from bucket_collect(ctx, np.zeros(64)))

        run = traced(6, prog)
        u = utilization(run.trace, 6)
        assert all(v > 0.9 for v in u)

    def test_mst_bcast_has_idle_tail_ranks(self):
        """Tree algorithms leave late leaves mostly idle — the contrast
        that motivates the hybrids."""
        def prog(env):
            buf = np.zeros(512) if env.rank == 0 else None
            out = yield from api.bcast(env, buf, total=512,
                                       algorithm="short")
            return out is not None

        run = traced(16, prog)
        u = utilization(run.trace, 16)
        assert min(u) < 0.5 < max(u)
