"""Observatory smoke test: the dashboard server over real artifacts.

Starts ``repro.analysis.serve`` on an ephemeral port against a
directory of representative artifacts, and checks that the dashboard
index, every static asset, the artifact API, and merged traces all
answer HTTP 200 (and that non-whitelisted paths answer 404) before the
server shuts down cleanly.  Stdlib only on both sides — the same
constraint the observatory itself lives under.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.analysis import serve as serve_mod


@pytest.fixture()
def artifact_root(tmp_path):
    (tmp_path / "AUDIT_model.json").write_text(json.dumps({
        "cells": [{"operation": "bcast", "p": 4, "n": 64, "regret": 1.0,
                   "chosen": "(4, M)", "best": "(4, M)",
                   "candidates": [], "mesh_shape": None,
                   "shape": ["line", 4]}],
        "regret": {"median": 1.0, "max": 1.0, "count": 1,
                   "optimal_cells": 1},
        "max_median_regret": 1.05,
    }))
    (tmp_path / "CHAOS_report.json").write_text(json.dumps({
        "cases": 1, "counts": {"ok": 1, "diagnosed": 0},
        "violations": [], "gates": {"zero_silent_corruption": True},
        "records": [{"id": "mesh/bcast/baseline/1", "profile": "baseline",
                     "schedule": "empty", "outcome": "ok", "time": 0.1}],
        "passed": True,
    }))
    (tmp_path / "CHAOS_autopilot.json").write_text(json.dumps({
        "kind": "repro-chaos-autopilot", "version": 1, "seed": 42,
        "cases": 2, "store_records": 2,
        "verdicts": {"ok": 1, "diagnosed-fault": 1},
        "cell_matrix": {"ring": {"bcast": 2}},
        "profile_matrix": {"byzantine": {"diagnosed-fault": 1},
                           "none": {"ok": 1}},
        "explored_cells": 2, "possible_cells": 225,
        "open_findings": [], "golden": [],
        "gates": {"zero_silent_corruption": True,
                  "zero_undiagnosed_hang": True},
        "passed": True,
    }))
    (tmp_path / "BENCH_service.json").write_text(json.dumps({
        "grid": "smoke", "passed": True, "violations": {},
        "gates": {"speedup_floor": 2.0, "fairness_share_floor": 0.5,
                  "bit_exact_fused_vs_unfused": True,
                  "storm_fused_speedup_2x": True,
                  "storm_fairness_floor": True,
                  "zero_silent_drops": True},
        "cells": [{
            "id": "storm/sim", "workload": "storm", "backend": "sim",
            "world_size": 8, "tenants": 2, "speedup": 3.5,
            "comparison": {"bit_exact": True, "mismatches": []},
            "fused": {"requests_per_s": 4000.0, "fusion_ratio": 1.0,
                      "fairness_index": 1.0, "accounted": True,
                      "latency_v": {"p50": 1e-3, "p99": 2e-3},
                      "tenant_shares": {"t0": 0.5, "t1": 0.5}},
            "unfused": {"requests_per_s": 1100.0, "fusion_ratio": 0.0,
                        "fairness_index": 1.0, "accounted": True,
                        "latency_v": {"p50": 2e-3, "p99": 4e-3},
                        "tenant_shares": {"t0": 0.5, "t1": 0.5}},
        }],
    }))
    (tmp_path / "demo.trace.json").write_text(
        json.dumps({"traceEvents": []}))
    # present in the repo but deliberately absent here: the index must
    # only advertise what exists
    return tmp_path


@pytest.fixture()
def server(artifact_root):
    srv = serve_mod.make_server(str(artifact_root), port=0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    host, port = srv.server_address[:2]
    yield f"http://{host}:{port}"
    srv.shutdown()
    srv.server_close()
    thread.join(timeout=5)
    assert not thread.is_alive(), "server thread failed to shut down"


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as res:
        return res.status, res.headers["Content-Type"], res.read()


def _status(url):
    try:
        return _get(url)[0]
    except urllib.error.HTTPError as err:
        return err.code


class TestObservatory:
    def test_dashboard_index_renders(self, server):
        status, ctype, body = _get(server + "/")
        assert status == 200
        assert ctype.startswith("text/html")
        assert b"repro observatory" in body
        assert b"/static/observatory.js" in body
        assert b"sec-autopilot" in body  # chaos-autopilot panel present
        assert b"sec-service" in body    # multi-tenant service panel

    def test_static_assets_served(self, server):
        for name, ctype in [("observatory.css", "text/css"),
                            ("observatory.js", "application/javascript"),
                            ("index.html", "text/html")]:
            status, got_ctype, body = _get(server + "/static/" + name)
            assert status == 200, name
            assert got_ctype.startswith(ctype), name
            assert body

    def test_api_index_lists_only_present_artifacts(self, server):
        status, _, body = _get(server + "/api/index")
        assert status == 200
        idx = json.loads(body)
        assert [a["name"] for a in idx["artifacts"]] == \
            ["AUDIT_model.json", "BENCH_service.json",
             "CHAOS_report.json", "CHAOS_autopilot.json"]
        assert [t["name"] for t in idx["traces"]] == ["demo.trace.json"]

    def test_each_artifact_endpoint_serves_json(self, server):
        for name in ["AUDIT_model.json", "BENCH_service.json",
                     "CHAOS_report.json", "CHAOS_autopilot.json",
                     "demo.trace.json"]:
            status, ctype, body = _get(server + "/api/artifact/" + name)
            assert status == 200, name
            assert ctype.startswith("application/json")
            json.loads(body)  # valid JSON all the way through

    def test_unknown_routes_404(self, server):
        assert _status(server + "/api/artifact/secret.json") == 404
        assert _status(server + "/api/artifact/BENCH_sim.json") == 404
        assert _status(server + "/api/artifact/..%2Fsetup.py") == 404
        assert _status(server + "/static/no-such.css") == 404
        assert _status(server + "/static/serve.py") == 404
        assert _status(server + "/etc/passwd") == 404

    def test_list_artifacts_against_repo_root(self):
        # the helper the CLI banner uses; on the repo itself it must
        # pick up the committed artifacts
        idx = serve_mod.list_artifacts(".")
        names = [a["name"] for a in idx["artifacts"]]
        assert "AUDIT_model.json" in names
        assert "CHAOS_report.json" in names
        assert "BENCH_service.json" in names
