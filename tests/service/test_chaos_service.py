"""Faults mid-storm: typed outcomes for every request, never silence.

Satellite of the service PR (docs/service.md): one seeded fault
profile injected while a multi-tenant storm is in flight must leave
every submitted request in exactly one typed terminal state — ``ok``
(bit-identical to the fault-free oracle), ``rejected`` (typed
:class:`~repro.service.request.Rejection`), or ``dead-letter``
(carrying the run's typed :class:`~repro.sim.faults.FaultDiagnosis`).
"""

import numpy as np
import pytest

from repro.service.chaos import (SERVICE_CHAOS_PROFILES, run_chaos_storm,
                                 service_fault_schedule)
from repro.sim import Machine, Mesh2D, PARAGON


def _assert_ok_match_oracle(report, oracle):
    for rid, out in report.outcomes.items():
        if out.status != "ok":
            continue
        assert rid in report.results, f"{rid} ok but has no results"
        for rank, v in report.results[rid].items():
            w = oracle.results[rid][rank]
            if v is None and w is None:
                continue
            assert (np.asarray(v) == np.asarray(w)).all(), \
                f"{rid} corrupted on rank {rank}"


@pytest.mark.parametrize("profile", sorted(SERVICE_CHAOS_PROFILES))
def test_every_request_typed_under_faults(profile):
    report, oracle = run_chaos_storm(profile, seed=1)
    # the zero-silent-drop invariant: full accounting, typed states
    assert report.accounted()
    assert len(report.outcomes) == oracle.plan.submitted
    _assert_ok_match_oracle(report, oracle)
    may_lose = SERVICE_CHAOS_PROFILES[profile]
    if not may_lose:
        # delay-only profiles must deliver everything, bit-exactly
        assert report.dead_letters == 0
        assert report.completed == oracle.completed
        assert report.diagnosis is None
    elif report.dead_letters:
        # losses must carry the run's typed diagnosis
        assert report.diagnosis is not None
        assert report.diagnosis["type"] == "FaultDiagnosis"


def test_crash_mid_storm_dead_letters_with_diagnosis():
    # seed chosen so the crash lands mid-storm: some batches complete
    # before it, the rest dead-letter (pinned by the seeded schedule)
    report, oracle = run_chaos_storm("crash", seed=1)
    assert report.dead_letters > 0
    assert report.completed > 0
    assert report.completed + report.dead_letters == len(report.outcomes)
    assert report.diagnosis is not None
    assert report.diagnosis["type"] == "FaultDiagnosis"
    _assert_ok_match_oracle(report, oracle)
    # dead-letters carry no stale results or completion times
    for out in report.outcomes.values():
        if out.status == "dead-letter":
            assert np.isnan(out.completion_v)


def test_schedules_are_seeded_and_reproducible():
    m = Machine(Mesh2D(2, 3), PARAGON)
    a = service_fault_schedule("crash", m, seed=3, t_mid=0.01)
    b = service_fault_schedule("crash", m, seed=3, t_mid=0.01)
    c = service_fault_schedule("crash", m, seed=4, t_mid=0.01)
    assert a.to_dict() == b.to_dict()
    assert a.to_dict() != c.to_dict()


def test_unknown_profile_rejected():
    m = Machine(Mesh2D(2, 3), PARAGON)
    with pytest.raises(ValueError):
        service_fault_schedule("meteor", m)
