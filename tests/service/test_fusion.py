"""Fusion planning: costed combining decisions, audited per batch."""

import pytest

from repro.service import FusionPlanner
from repro.service.request import CollectiveRequest, PayloadSpec

GROUP = (0, 1, 2, 3)


def _req(seq, op="allreduce", length=1, dtype="float64", tenant="t0",
         redop="sum", root=0, group=GROUP):
    return CollectiveRequest(
        rid=f"{tenant}/{seq}", tenant=tenant, sid=0, op=op, group=group,
        payload=PayloadSpec(length=length, dtype=dtype, seed=seq),
        redop=redop, root=root, seq=seq)


def _alpha_beta_price(op, group, nelems, itemsize, alpha=1.0, beta=1e-6):
    # strongly alpha-dominated: fusing small requests always wins
    return alpha + beta * nelems * itemsize


class TestFusionDecision:
    def test_compatible_small_requests_fuse(self):
        planner = FusionPlanner(price=_alpha_beta_price)
        reqs = [_req(i, tenant=f"t{i % 3}") for i in range(6)]
        batches = planner.plan(reqs)
        assert len(batches) == 1
        (batch,) = batches
        assert batch.fused
        assert batch.requests == tuple(reqs)
        assert batch.cost_v < batch.unfused_cost_v

    def test_slices_tile_the_concatenation(self):
        planner = FusionPlanner(price=_alpha_beta_price)
        reqs = [_req(i, length=ln) for i, ln in enumerate((3, 1, 5))]
        (batch,) = planner.plan(reqs)
        assert batch.slices == ((0, 3), (3, 1), (4, 5))
        assert batch.total_elems == 9

    def test_incompatible_keys_never_fuse(self):
        planner = FusionPlanner(price=_alpha_beta_price)
        reqs = [
            _req(0),
            _req(1, dtype="float32"),            # dtype differs
            _req(2, redop="max"),                # combine op differs
            _req(3, group=(0, 1, 2)),            # group differs
            _req(4, op="reduce", root=1),        # op differs
        ]
        batches = planner.plan(reqs)
        assert all(not b.fused for b in batches)
        assert len(batches) == len(reqs)

    def test_size_threshold_excludes_large_requests(self):
        planner = FusionPlanner(price=_alpha_beta_price,
                                threshold_bytes=64)
        small = [_req(i, length=2) for i in range(2)]      # 16 bytes
        large = _req(9, length=100)                        # 800 bytes
        batches = planner.plan(small + [large])
        fused = [b for b in batches if b.fused]
        assert len(fused) == 1
        assert fused[0].requests == tuple(small)
        singles = [b for b in batches if not b.fused]
        assert singles[0].requests == (large,)

    def test_max_fused_chunks_the_bucket(self):
        planner = FusionPlanner(price=_alpha_beta_price, max_fused=4)
        reqs = [_req(i) for i in range(10)]
        batches = planner.plan(reqs)
        assert [len(b.requests) for b in batches] == [4, 4, 2]
        assert all(b.fused for b in batches)

    def test_fusion_only_when_model_says_cheaper(self):
        # a price with NO startup term: fusing can never win
        planner = FusionPlanner(
            price=lambda op, g, n, isz: float(n * isz))
        batches = planner.plan([_req(i) for i in range(4)])
        assert all(not b.fused for b in batches)

    def test_disabled_planner_emits_singletons(self):
        planner = FusionPlanner(price=_alpha_beta_price, enabled=False)
        batches = planner.plan([_req(i) for i in range(5)])
        assert all(not b.fused for b in batches)
        assert len(batches) == 5

    def test_nonfusible_ops_stay_single(self):
        planner = FusionPlanner(price=_alpha_beta_price)
        reqs = [_req(0, op="collect"), _req(1, op="collect"),
                _req(2, op="reduce_scatter"), _req(3, op="reduce_scatter")]
        batches = planner.plan(reqs)
        assert all(not b.fused for b in batches)

    def test_batch_ids_follow_emission_order(self):
        planner = FusionPlanner(price=_alpha_beta_price)
        reqs = [_req(0), _req(1, op="collect"), _req(2)]
        batches = planner.plan(reqs)
        assert [b.bid for b in batches] == [0, 1]
        # the fused (0, 2) pair appears at its first member's position
        assert batches[0].fused and len(batches[0].requests) == 2
        assert batches[1].requests[0].op == "collect"

    def test_tenant_cost_shares_sum_to_batch_cost(self):
        planner = FusionPlanner(price=_alpha_beta_price)
        reqs = [_req(i, tenant=f"t{i % 2}", length=1 + i) for i in range(4)]
        (batch,) = planner.plan(reqs)
        shares = batch.tenant_cost_shares()
        assert sum(shares.values()) == pytest.approx(batch.cost_v)
        assert set(shares) == {"t0", "t1"}

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            FusionPlanner(price=_alpha_beta_price, max_fused=1)
        with pytest.raises(ValueError):
            FusionPlanner(price=_alpha_beta_price, threshold_bytes=-1)
