"""Deficit-round-robin: per-tenant isolation on priced service time."""

import pytest

from repro.service import DeficitRoundRobin
from repro.service.request import CollectiveRequest, PayloadSpec


def _req(tenant, seq, length=1, cls="batch"):
    return CollectiveRequest(
        rid=f"{tenant}/{seq}", tenant=tenant, sid=0, op="allreduce",
        group=(0, 1, 2, 3), payload=PayloadSpec(length=length),
        deadline_class=cls, seq=seq)


def _unit_cost(req):
    return float(req.payload.length)


class TestRounds:
    def test_round_on_empty_scheduler_is_empty(self):
        assert DeficitRoundRobin(_unit_cost).round() == []

    def test_single_tenant_fifo(self):
        drr = DeficitRoundRobin(_unit_cost, quantum_s=10.0)
        reqs = [_req("a", i) for i in range(5)]
        for r in reqs:
            drr.enqueue(r)
        assert drr.round() == reqs
        assert drr.pending == 0

    def test_equal_service_time_per_round(self):
        # tenant a queues 3-unit requests, tenant b 1-unit requests:
        # one quantum of 3 should dispatch one of a's and three of b's
        drr = DeficitRoundRobin(_unit_cost, quantum_s=3.0)
        for i in range(4):
            drr.enqueue(_req("a", i, length=3))
        for i in range(12):
            drr.enqueue(_req("b", i, length=1))
        out = drr.round()
        assert sum(1 for r in out if r.tenant == "a") == 1
        assert sum(1 for r in out if r.tenant == "b") == 3

    def test_chatty_tenant_cannot_starve_quiet_one(self):
        drr = DeficitRoundRobin(_unit_cost)
        for i in range(1000):
            drr.enqueue(_req("hog", i))
        drr.enqueue(_req("quiet", 0))
        out = drr.round()
        assert any(r.tenant == "quiet" for r in out)

    def test_adaptive_quantum_dispatches_at_any_scale(self):
        # costs far from 1.0 in both directions; every backlogged
        # tenant must still dispatch at least one request per round
        for scale in (1e-9, 1.0, 1e9):
            drr = DeficitRoundRobin(
                lambda r, s=scale: s * r.payload.length)
            drr.enqueue(_req("a", 0))
            drr.enqueue(_req("b", 0, length=7))
            out = drr.round()
            assert {r.tenant for r in out} == {"a", "b"}

    def test_deficit_resets_when_idle(self):
        drr = DeficitRoundRobin(_unit_cost, quantum_s=1.0)
        drr.enqueue(_req("a", 0, length=1))
        assert len(drr.round()) == 1          # a now idle
        # several empty rounds must not bank credit for a
        drr.enqueue(_req("b", 0, length=1))
        drr.round()
        for i in range(3):
            drr.enqueue(_req("a", 10 + i, length=1))
        out = drr.round()
        # one quantum = one unit -> exactly one of a's three requests
        assert sum(1 for r in out if r.tenant == "a") == 1

    def test_round_robin_order_is_first_seen(self):
        drr = DeficitRoundRobin(_unit_cost, quantum_s=5.0)
        drr.enqueue(_req("z", 0))
        drr.enqueue(_req("a", 0))
        out = drr.round()
        assert [r.tenant for r in out] == ["z", "a"]


class TestDeadlineClasses:
    def test_stricter_class_dispatches_first_within_tenant(self):
        drr = DeficitRoundRobin(_unit_cost, quantum_s=10.0)
        drr.enqueue(_req("a", 0, cls="bulk"))
        drr.enqueue(_req("a", 1, cls="interactive"))
        drr.enqueue(_req("a", 2, cls="batch"))
        out = drr.round()
        assert [r.deadline_class for r in out] == \
            ["interactive", "batch", "bulk"]

    def test_classes_never_reorder_across_tenants(self):
        # b's interactive request must not jump a's turn in the round
        drr = DeficitRoundRobin(_unit_cost, quantum_s=1.0)
        drr.enqueue(_req("a", 0, cls="bulk"))
        drr.enqueue(_req("b", 0, cls="interactive"))
        out = drr.round()
        assert [r.tenant for r in out] == ["a", "b"]

    def test_invalid_quantum_rejected(self):
        with pytest.raises(ValueError):
            DeficitRoundRobin(_unit_cost, quantum_s=0.0)
