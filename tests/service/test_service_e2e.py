"""End-to-end service runs: determinism, bit-exactness, fairness."""

import json
import math

import numpy as np
import pytest

from repro.service import (ServiceConfig, ServiceCore, bursty_spec,
                           execute_plan, mixed_spec, run_workload,
                           serve_workload, storm_spec)
from repro.sim import Machine, Mesh2D, PARAGON


def _machine():
    return Machine(Mesh2D(2, 3), PARAGON)


def _core(machine, **cfg):
    return ServiceCore(machine.nnodes, params=machine.params,
                       topology=machine.topology,
                       config=ServiceConfig(**cfg))


def _assert_same_values(a, b, rids=None):
    rids = sorted(set(a.results) & set(b.results)) if rids is None \
        else sorted(rids)
    assert rids, "nothing to compare"
    for rid in rids:
        assert set(a.results[rid]) == set(b.results[rid])
        for rank, va in a.results[rid].items():
            vb = b.results[rid][rank]
            if va is None and vb is None:
                continue
            assert np.asarray(va).dtype == np.asarray(vb).dtype
            assert (np.asarray(va) == np.asarray(vb)).all(), \
                f"{rid} differs on rank {rank}"


class TestPlanDeterminism:
    def test_same_seed_same_plan_bytes(self):
        spec = mixed_spec(tenants=3, requests=12)
        plans = []
        for _ in range(2):
            core = _core(_machine())
            plans.append(run_workload(core, spec, seed=42).to_dict())
        assert json.dumps(plans[0], sort_keys=True, default=float) == \
            json.dumps(plans[1], sort_keys=True, default=float)

    def test_different_seed_different_traffic(self):
        spec = mixed_spec(tenants=3, requests=12)
        a = run_workload(_core(_machine()), spec, seed=1).to_dict()
        b = run_workload(_core(_machine()), spec, seed=2).to_dict()
        assert json.dumps(a, sort_keys=True, default=float) != \
            json.dumps(b, sort_keys=True, default=float)

    def test_every_submission_has_terminal_outcome(self):
        spec = bursty_spec(tenants=3, requests=20)
        core = _core(_machine(), admission_rate=80.0,
                     admission_burst=2.0, queue_cap=8)
        plan = run_workload(core, spec, seed=9)
        assert plan.submitted == spec.total_requests
        assert len(plan.outcomes) == plan.submitted
        assert plan.rejected > 0, "bursty+rate-limit should reject some"
        kinds = {o.rejection.kind for o in plan.outcomes.values()
                 if o.status == "rejected"}
        assert kinds <= {"rate-limit", "queue-full"}
        assert all(o.status in ("ok", "rejected")
                   for o in plan.outcomes.values())


class TestFusedVsUnfused:
    def test_storm_bit_exact_and_cheaper(self):
        spec = storm_spec(tenants=3, requests=12, window=6)
        reports = {}
        for fusion in (True, False):
            m = _machine()
            reports[fusion] = serve_workload(
                m, spec, seed=7, config=ServiceConfig(fusion=fusion))
        fused, unfused = reports[True], reports[False]
        assert fused.plan.fusion_ratio == 1.0
        assert unfused.plan.fusion_ratio == 0.0
        assert set(fused.results) == set(unfused.results)
        _assert_same_values(fused, unfused)
        # simulated wall time: the fused storm must be faster
        assert fused.elapsed_s < unfused.elapsed_s
        assert fused.requests_per_s >= 2.0 * unfused.requests_per_s

    def test_mixed_workload_bit_exact(self):
        spec = mixed_spec(tenants=3, requests=15)
        reports = {}
        for fusion in (True, False):
            reports[fusion] = serve_workload(
                _machine(), spec, seed=3,
                config=ServiceConfig(fusion=fusion))
        assert set(reports[True].results) == set(reports[False].results)
        _assert_same_values(reports[True], reports[False])

    def test_fused_batches_price_below_unfused(self):
        spec = storm_spec(tenants=3, requests=10, window=5)
        plan = run_workload(_core(_machine()), spec, seed=1)
        fused = [b for b in plan.batches if b.fused]
        assert fused
        for b in fused:
            assert b.cost_v < b.unfused_cost_v


class TestFairness:
    def test_symmetric_storm_is_fair(self):
        spec = storm_spec(tenants=4, requests=15, window=6)
        m = Machine(Mesh2D(2, 4), PARAGON)
        rep = serve_workload(m, spec, seed=5, trace=True)
        shares = rep.plan.tenant_shares()
        assert len(shares) == 4
        floor = 0.5 / 4
        assert min(shares.values()) >= floor
        assert rep.plan.fairness_index() > 0.95
        # measured (span-derived) shares must exist and agree roughly
        assert rep.measured_tenant_shares is not None
        total = sum(rep.measured_tenant_shares.values())
        for t, v in rep.measured_tenant_shares.items():
            assert v / total == pytest.approx(shares[t], abs=0.1)

    def test_latency_percentiles_populated(self):
        spec = storm_spec(tenants=2, requests=10, window=4)
        rep = serve_workload(_machine(), spec, seed=2)
        lat = rep.plan.latency_percentiles()
        assert lat["p50"] > 0 and lat["p99"] >= lat["p50"]
        assert not math.isnan(lat["p99"])


class TestExecuteContract:
    def test_world_size_mismatch_rejected(self):
        spec = storm_spec(tenants=2, requests=4, window=4)
        plan = run_workload(_core(_machine()), spec, seed=1)
        other = Machine(Mesh2D(2, 4), PARAGON)
        with pytest.raises(ValueError):
            execute_plan(other, plan)

    def test_replaying_a_plan_does_not_mutate_it(self):
        spec = storm_spec(tenants=2, requests=4, window=4)
        plan = run_workload(_core(_machine()), spec, seed=1)
        before = json.dumps(plan.to_dict(), sort_keys=True, default=float)
        execute_plan(_machine(), plan)
        execute_plan(_machine(), plan)
        after = json.dumps(plan.to_dict(), sort_keys=True, default=float)
        assert before == after


class TestRuntimeBackend:
    def test_storm_bit_exact_on_process_backend(self):
        from repro.runtime import ProcessMachine
        spec = storm_spec(tenants=2, requests=6, window=4)
        reports = {}
        for fusion in (True, False):
            m = ProcessMachine(nprocs=3, timeout=60)
            reports[fusion] = serve_workload(
                m, spec, seed=4, config=ServiceConfig(fusion=fusion))
        fused, unfused = reports[True], reports[False]
        assert fused.backend == "ProcessMachine"
        assert fused.accounted() and unfused.accounted()
        assert set(fused.results) == set(unfused.results)
        _assert_same_values(fused, unfused)
        assert fused.plan.fusion_ratio == 1.0
