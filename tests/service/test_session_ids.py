"""Context-id allocation at service scale.

The service multiplexes thousands of sessions (and per-batch fused
communicators) onto one world communicator; every derivation must
yield a context id that is unique on each rank, identical across
ranks, and identical across runs — without any coordinating
communication.  These tests stress the base-1024 escape scheme well
past one digit block, interleaving the derivation patterns the service
executor actually uses (``incl`` for sessions and fused batches,
``dup``, and communicating ``split``).
"""

import numpy as np

from repro.service import (ServiceConfig, ServiceCore, execute_plan,
                           run_workload, storm_spec)
from repro.sim import Machine, Mesh2D, PARAGON
from repro.core.communicator import Communicator


def _interleaved_derivations(env, n_incl, n_split):
    """Derive thousands of communicators; return this rank's id list."""
    world = Communicator.world(env)
    ids = [world.context_id]
    comms = [world]
    for i in range(n_incl):
        kind = i % 3
        if kind == 0:
            child = world.incl(range(world.size))
        elif kind == 1:
            child = world.incl(range(i % (world.size - 1) + 1, world.size))
        else:
            parent = comms[(i * 7) % len(comms)]
            child = parent.dup()
        ids.append(child.context_id)
        if len(comms) < 64:
            comms.append(child)
    for i in range(n_split):
        sub = yield from world.split(color=env.rank % 2, key=None)
        ids.append(sub.context_id)
    return ids


class TestEscapeScheme:
    def test_thousands_of_interleaved_ids_unique_and_agreed(self):
        m = Machine(Mesh2D(2, 2), PARAGON)
        res = m.run(_interleaved_derivations, 3000, 20)
        per_rank = res.results
        for ids in per_rank:
            assert len(ids) == len(set(ids)), "duplicate context id"
        # identical allocation sequence on every rank, no communication
        assert all(ids == per_rank[0] for ids in per_rank[1:])
        # 3000 children of one parent crosses the 1022-child digit
        # block boundary twice: escape-extended ids must appear
        assert max(per_rank[0]) > 1024 ** 3

    def test_rerun_reproduces_the_same_ids(self):
        runs = []
        for _ in range(2):
            m = Machine(Mesh2D(2, 2), PARAGON)
            runs.append(m.run(_interleaved_derivations, 1500, 8).results)
        assert runs[0] == runs[1]


def _session_storm_ids(env, plan):
    """Derive the plan's session communicators exactly like the
    executor and report their context ids."""
    world = Communicator.world(env)
    comms = {s.sid: world.incl(s.group) for s in plan.sessions}
    yield from world.barrier()
    return [comms[s.sid].context_id for s in plan.sessions]


class TestServiceScale:
    def test_thousand_session_plan_allocates_unique_agreed_ids(self):
        m = Machine(Mesh2D(2, 3), PARAGON)
        core = ServiceCore(m.nnodes, params=m.params, topology=m.topology)
        for i in range(1200):
            tenant = f"t{i % 7}"
            group = None if i % 3 else (i % m.nnodes,
                                        (i + 1) % m.nnodes,
                                        (i + 2) % m.nnodes)
            core.open_session(tenant, group)
        sess = core.sessions[0]
        for i in range(4):
            core.submit(sess, "allreduce", 1)
        core.drain()
        plan = core.plan()
        assert len(plan.sessions) == 1200
        res = m.run(_session_storm_ids, plan)
        for ids in res.results:
            assert len(ids) == 1200
            assert len(set(ids)) == 1200
        assert all(ids == res.results[0] for ids in res.results[1:])

    def test_executed_storm_results_correct_despite_many_prior_sessions(self):
        # context ids derived after the 1022-child escape must still
        # route collectives correctly: compare against a fresh-machine
        # oracle of the same plan
        m = Machine(Mesh2D(2, 3), PARAGON)
        spec = storm_spec(tenants=3, requests=8, window=4)
        core = ServiceCore(m.nnodes, params=m.params, topology=m.topology,
                           config=ServiceConfig())
        for i in range(1100):          # push past one digit block
            core.open_session(f"pad{i % 5}")
        plan = run_workload(core, spec, seed=6)
        rep = execute_plan(m, plan)
        assert rep.accounted()
        assert rep.completed == spec.total_requests
        # oracle: same traffic planned with no padding sessions
        core2 = ServiceCore(m.nnodes, params=m.params,
                            topology=m.topology, config=ServiceConfig())
        plan2 = run_workload(core2, spec, seed=6)
        rep2 = execute_plan(Machine(m.topology, m.params), plan2)
        for rid in rep2.results:
            for rank, v in rep2.results[rid].items():
                w = rep.results[rid][rank]
                assert (np.asarray(v) == np.asarray(w)).all()
