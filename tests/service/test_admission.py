"""Token-bucket admission: typed rejections, never silent."""

import pytest

from repro.service import AdmissionController, TokenBucket
from repro.service.request import Rejection


class TestTokenBucket:
    def test_burst_then_refill(self):
        tb = TokenBucket(rate=10.0, burst=3.0)
        assert tb.try_take(0.0)
        assert tb.try_take(0.0)
        assert tb.try_take(0.0)
        assert not tb.try_take(0.0)          # burst spent
        assert not tb.try_take(0.05)         # half a token back
        assert tb.try_take(0.1)              # one token back

    def test_retry_after_names_the_next_token(self):
        tb = TokenBucket(rate=2.0, burst=1.0)
        assert tb.try_take(0.0)
        wait = tb.retry_after(0.0)
        assert wait == pytest.approx(0.5)
        assert tb.try_take(0.0 + wait)

    def test_unlimited_bucket_always_admits(self):
        tb = TokenBucket(rate=None, burst=1.0)
        assert all(tb.try_take(0.0) for _ in range(1000))

    def test_burst_caps_accumulation(self):
        tb = TokenBucket(rate=100.0, burst=2.0)
        # a long idle period must not bank more than `burst` tokens
        assert tb.try_take(10.0)
        assert tb.try_take(10.0)
        assert not tb.try_take(10.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=-1.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)


class TestAdmissionController:
    def test_open_admission_never_rejects(self):
        ac = AdmissionController(rate=None, burst=1.0, queue_cap=None)
        assert all(ac.admit("t0", 0.0, backlog=i) is None
                   for i in range(100))

    def test_rate_limit_rejection_is_typed(self):
        ac = AdmissionController(rate=1.0, burst=1.0, queue_cap=None)
        assert ac.admit("t0", 0.0, backlog=0) is None
        rej = ac.admit("t0", 0.0, backlog=0)
        assert isinstance(rej, Rejection)
        assert rej.kind == "rate-limit"
        assert rej.tenant == "t0"
        assert rej.retry_after_v == pytest.approx(1.0)

    def test_queue_full_wins_over_rate_limit(self):
        ac = AdmissionController(rate=1.0, burst=1.0, queue_cap=2)
        ac.admit("t0", 0.0, backlog=0)       # drains the bucket too
        rej = ac.admit("t0", 0.0, backlog=2)
        assert rej.kind == "queue-full"

    def test_buckets_are_per_tenant(self):
        ac = AdmissionController(rate=1.0, burst=1.0, queue_cap=None)
        assert ac.admit("t0", 0.0, backlog=0) is None
        assert ac.admit("t0", 0.0, backlog=0) is not None
        assert ac.admit("t1", 0.0, backlog=0) is None  # fresh bucket

    def test_per_tenant_policy_override(self):
        ac = AdmissionController(rate=1.0, burst=1.0, queue_cap=None)
        ac.set_policy("vip", rate=None, burst=1.0)
        assert all(ac.admit("vip", 0.0, backlog=0) is None
                   for _ in range(50))
        assert ac.admit("std", 0.0, backlog=0) is None
        assert ac.admit("std", 0.0, backlog=0) is not None

    def test_policy_change_after_first_admit_refused(self):
        ac = AdmissionController(rate=None, burst=1.0, queue_cap=None)
        ac.admit("t0", 0.0, backlog=0)
        with pytest.raises(RuntimeError):
            ac.set_policy("t0", rate=5.0, burst=1.0)
