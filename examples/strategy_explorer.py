#!/usr/bin/env python
"""Interactive-style strategy explorer: the Table 2 machinery as a tool.

For a chosen operation, node count and machine, prints the ranked hybrid
strategies at several message lengths — showing how the optimum walks
from the pure MST algorithm (minimum startups) through the mixed
hybrids to pure scatter/collect (minimum bandwidth) as vectors grow,
and how mesh-aware candidates beat linear-array ones when the group is
a physical submesh.

Run:  python examples/strategy_explorer.py [p] [operation]
"""

import sys

from repro.analysis import format_table, human_bytes
from repro.core import Selector
from repro.core.selection import linear_interleaves
from repro.sim import PARAGON


def explore(p: int, operation: str) -> None:
    sel = Selector(PARAGON, itemsize=1)  # lengths given in bytes

    print(f"=== {operation} on a linear array of {p} nodes "
          f"(Paragon parameters) ===\n")
    for nbytes in (8, 1024, 64 * 1024, 1024 * 1024):
        ranked = sel.ranked(operation, p, nbytes)
        rows = [[str(c.strategy), f"{c.cost * 1e3:.4f}"]
                for c in ranked[:6]]
        print(format_table(
            ["strategy", "predicted ms"], rows,
            title=f"-- message length {human_bytes(nbytes)}B "
                  f"(best first) --"))
        print()

    if p == 512:
        print("=== same operation, but the group is the 16x32 physical "
              "mesh ===\n")
        for nbytes in (64 * 1024, 1024 * 1024):
            ranked = sel.ranked(operation, p, nbytes, mesh_shape=(16, 32))
            rows = [[str(c.strategy),
                     "x".join(f"{f:g}" for f in c.conflicts),
                     f"{c.cost * 1e3:.4f}"] for c in ranked[:6]]
            print(format_table(
                ["strategy", "conflict factors", "predicted ms"], rows,
                title=f"-- {human_bytes(nbytes)}B, mesh-aware --"))
            print()


def main():
    p = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    operation = sys.argv[2] if len(sys.argv) > 2 else "bcast"
    explore(p, operation)


if __name__ == "__main__":
    main()
