#!/usr/bin/env python
"""Porting the library to a new machine — automated (section 11).

"To port the library between platforms or tune it for new operating
system releases, it suffices to enter a few parameters that describe
the latency, bandwidth and computation characteristics of the system."

This example treats an unknown machine as a black box:

1. run the Littlefield-style characterization (ping-pong sweep, combine
   loop, channel-contention probe) to *measure* alpha, beta, gamma, the
   per-call overhead, and the excess link capacity;
2. hand the fitted parameters to the strategy selector;
3. verify that the strategies chosen from measurements match the ones
   chosen from the machine's true (hidden) parameters, and that the
   library performs identically under both.

Run:  python examples/port_the_library.py
"""

import numpy as np

from repro.analysis import calibrate, format_table, human_bytes
from repro.core import Selector, api
from repro.sim import Machine, Mesh2D, MachineParams

# The "new machine": a 12x12 mesh with characteristics unlike any of
# the shipped presets — pretend we know nothing about it.
HIDDEN = MachineParams(
    alpha=45e-6,            # a faster message layer than OSF R1.1
    beta=1.0 / 90e6,        # 90 MB/s injection bandwidth
    gamma=4e-8,             # faster combine units
    sw_overhead=5e-6,
    link_capacity=2.0,
)
MACHINE = Machine(Mesh2D(12, 12), HIDDEN)


def main():
    print("characterizing the unknown 12x12 machine ...")
    fitted = calibrate(MACHINE)

    rows = [
        ["alpha (us)", f"{HIDDEN.alpha * 1e6:.2f}",
         f"{fitted.alpha * 1e6:.2f}"],
        ["bandwidth (MB/s)", f"{HIDDEN.injection_bandwidth / 1e6:.1f}",
         f"{fitted.injection_bandwidth / 1e6:.1f}"],
        ["gamma (ns)", f"{HIDDEN.gamma * 1e9:.1f}",
         f"{fitted.gamma * 1e9:.1f}"],
        ["call overhead (us)", f"{HIDDEN.sw_overhead * 1e6:.1f}",
         f"{fitted.sw_overhead * 1e6:.1f}"],
        ["link capacity", f"{HIDDEN.link_capacity:g}",
         f"{fitted.link_capacity:g}"],
    ]
    print(format_table(["parameter", "true (hidden)", "measured"], rows))

    # Strategy selection from measured parameters must match selection
    # from the hidden truth.
    sel_true = Selector(HIDDEN, itemsize=8)
    sel_fit = Selector(fitted, itemsize=8)
    print("\nstrategies for bcast on all 144 nodes (12x12 submesh):")
    agree = True
    for nbytes in (8, 4096, 256 * 1024, 1 << 20):
        n = max(1, nbytes // 8)
        a = sel_true.best("bcast", 144, n, mesh_shape=(12, 12)).strategy
        b = sel_fit.best("bcast", 144, n, mesh_shape=(12, 12)).strategy
        match = "MATCH" if a == b else f"differs (true {a})"
        agree &= a == b
        print(f"  {human_bytes(nbytes):>5}B -> {b}   [{match}]")
    assert agree, "fitted parameters picked different strategies"

    # And the port works: run a collective end-to-end.
    def prog(env):
        v = np.full(4096, float(env.rank))
        out = yield from api.allreduce(env, v, "sum")
        return float(out[0])

    run = MACHINE.run(prog)
    assert all(r == sum(range(144)) for r in run.results)
    print(f"\nallreduce of 32 KB on the ported library: "
          f"{run.time * 1e3:.3f} ms simulated")
    print("OK: the library was ported with measurements alone")


if __name__ == "__main__":
    main()
