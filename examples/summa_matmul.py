#!/usr/bin/env python
"""SUMMA matrix multiplication on a logical process mesh.

Section 9's motivation: "many applications require parallel
implementations formulated in terms of computation and communication
within node groups (e.g. rows and columns of a logical mesh)".  The
canonical such application — from the same research group as the paper —
is the SUMMA algorithm: ``C = A @ B`` on an ``R x C`` process mesh where
every step broadcasts a block-column of A within process *rows* and a
block-row of B within process *columns*.

This example distributes two matrices over a simulated 4 x 8 Paragon
submesh, runs SUMMA using the library's *group* broadcasts (which the
selector specializes for the conflict-free physical rows/columns), and
checks the result against a sequential ``numpy`` product.

Run:  python examples/summa_matmul.py
"""

import numpy as np

from repro.core import Communicator
from repro.core.partition import partition_offsets, partition_sizes
from repro.sim import Machine, Mesh2D, PARAGON

MESH_R, MESH_C = 4, 8       # process mesh
M, K, N = 96, 64, 80        # global matrix shapes: C[M,N] = A[M,K] @ B[K,N]
PANEL = 8                   # SUMMA panel width


def block_ranges(total, parts):
    offs = partition_offsets(partition_sizes(total, parts))
    return list(zip(offs[:-1], offs[1:]))


def summa_program(env, a_global, b_global):
    """SPMD SUMMA: each rank owns one block of A, B and computes its
    block of C."""
    world = Communicator.world(env)
    row = world.row_comm()    # my process row   (size MESH_C)
    col = world.col_comm()    # my process column (size MESH_R)
    pr, pc = world.rank // MESH_C, world.rank % MESH_C

    rows_m = block_ranges(M, MESH_R)   # distribution of M over mesh rows
    cols_n = block_ranges(N, MESH_C)   # distribution of N over mesh cols
    rows_k = block_ranges(K, MESH_R)   # K distributed like M (for B)
    cols_k = block_ranges(K, MESH_C)   # K distributed like N (for A)

    m0, m1 = rows_m[pr]
    n0, n1 = cols_n[pc]
    ak0, ak1 = cols_k[pc]
    bk0, bk1 = rows_k[pr]

    a_local = a_global[m0:m1, ak0:ak1].copy()   # my block of A
    b_local = b_global[bk0:bk1, n0:n1].copy()   # my block of B
    c_local = np.zeros((m1 - m0, n1 - n0))

    # march over K in panels; the owner column/row broadcasts its panel
    for k0 in range(0, K, PANEL):
        k1 = min(k0 + PANEL, K)
        width = k1 - k0

        # which process column owns A[:, k0:k1]?  (panel may straddle —
        # PANEL chosen to divide the K blocks evenly here)
        owner_c = next(i for i, (lo, hi) in enumerate(cols_k)
                       if lo <= k0 < hi)
        owner_r = next(i for i, (lo, hi) in enumerate(rows_k)
                       if lo <= k0 < hi)

        # broadcast the A panel within my process row
        if pc == owner_c:
            a_panel = a_local[:, k0 - ak0:k1 - ak0].copy()
        else:
            a_panel = None
        flat = a_panel.ravel() if a_panel is not None else None
        flat = yield from row.bcast(flat, root=owner_c,
                                    total=(m1 - m0) * width)
        a_panel = flat.reshape(m1 - m0, width)

        # broadcast the B panel within my process column
        if pr == owner_r:
            b_panel = b_local[k0 - bk0:k1 - bk0, :].copy()
        else:
            b_panel = None
        flat = b_panel.ravel() if b_panel is not None else None
        flat = yield from col.bcast(flat, root=owner_r,
                                    total=width * (n1 - n0))
        b_panel = flat.reshape(width, n1 - n0)

        # local rank-PANEL update (charge the flops to the machine)
        yield env.compute(2 * (m1 - m0) * (n1 - n0) * width)
        c_local += a_panel @ b_panel

    return (pr, pc), c_local


def main():
    assert K % MESH_R == 0 and K % MESH_C == 0, "K must tile the mesh"
    assert PANEL <= K // MESH_R and PANEL <= K // MESH_C, \
        "panel must not straddle block boundaries in this simple driver"
    rng = np.random.default_rng(42)
    a = rng.standard_normal((M, K))
    b = rng.standard_normal((K, N))

    machine = Machine(Mesh2D(MESH_R, MESH_C), PARAGON)
    run = machine.run(summa_program, a, b)
    print(f"SUMMA C[{M}x{N}] = A[{M}x{K}] @ B[{K}x{N}] on "
          f"{MESH_R}x{MESH_C} mesh: simulated {run.time * 1e3:.3f} ms, "
          f"{run.messages} messages")

    # stitch the distributed C back together and verify
    c = np.zeros((M, N))
    rows_m = block_ranges(M, MESH_R)
    cols_n = block_ranges(N, MESH_C)
    for (pr, pc), block in run.results:
        m0, m1 = rows_m[pr]
        n0, n1 = cols_n[pc]
        c[m0:m1, n0:n1] = block
    err = np.max(np.abs(c - a @ b))
    print(f"max |C_simulated - C_numpy| = {err:.2e}")
    assert err < 1e-10, "SUMMA result mismatch"
    print("OK: distributed product matches the sequential product")


if __name__ == "__main__":
    main()
