#!/usr/bin/env python
"""Distributed conjugate-gradient solve driven by the collective library.

The iterative-solver workload the paper's introduction alludes to: each
CG iteration needs

* a distributed mat-vec — here a 1-D row-block shifted Laplacian
  (diagonally dominant, so CG converges in tens of iterations), whose
  halo exchange is expressed as an allgather (``collect``) of the full
  vector for simplicity, and
* two global dot products — ``allreduce`` of a single double, the
  latency-critical short-vector case the MST primitives exist for.

The example solves ``A x = b`` for the shifted 1-D Poisson matrix on 32
simulated Paragon nodes and reports residuals plus the communication
profile (how much simulated time went to long-vector collects versus
short-vector allreduces).

Run:  python examples/cg_solver.py
"""

import numpy as np

from repro.core import api
from repro.core.partition import partition_offsets, partition_sizes
from repro.sim import Machine, Mesh2D, PARAGON

P_ROWS, P_COLS = 4, 8
N = 2048          # unknowns (64 per node)
MAXITER = 60
TOL = 1e-8


def laplacian_matvec(x_full, lo, hi):
    """Rows [lo, hi) of the shifted 1-D Poisson operator (3I - shift
    pattern) applied to x."""
    y = 3.0 * x_full[lo:hi]
    y -= np.concatenate(([x_full[lo - 1]] if lo > 0 else [0.0],
                         x_full[lo:hi - 1]))
    y -= np.concatenate((x_full[lo + 1:hi],
                         [x_full[hi]] if hi < len(x_full) else [0.0]))
    return y


def cg_program(env, b_global):
    p = env.nranks
    sizes = partition_sizes(N, p)
    offs = partition_offsets(sizes)
    lo, hi = offs[env.rank], offs[env.rank + 1]

    b = b_global[lo:hi].copy()
    x = np.zeros(hi - lo)
    r = b.copy()
    d = r.copy()

    def dot(u, v):
        """Global dot product: local partial + 1-element allreduce."""
        local = np.array([float(u @ v)])
        yield env.compute(2 * len(u))
        total = yield from api.allreduce(env, local, "sum")
        return float(total[0])

    def matvec(vec_local):
        """A @ v via collect of the full vector (halo exchange writ
        large; keeps the example focused on the collectives)."""
        full = yield from api.collect(env, vec_local, sizes=sizes)
        yield env.compute(3 * (hi - lo))
        return laplacian_matvec(full, lo, hi)

    rs_old = yield from dot(r, r)
    iters = 0
    for it in range(MAXITER):
        iters = it + 1
        ad = yield from matvec(d)
        dad = yield from dot(d, ad)
        alpha = rs_old / dad
        x += alpha * d
        r -= alpha * ad
        rs_new = yield from dot(r, r)
        if np.sqrt(rs_new) < TOL:
            break
        d = r + (rs_new / rs_old) * d
        rs_old = rs_new

    return x, iters, np.sqrt(rs_new)


def main():
    rng = np.random.default_rng(7)
    x_true = rng.standard_normal(N)
    # b = A @ x_true for the shifted 1-D Poisson matrix
    A = (np.diag(np.full(N, 3.0)) + np.diag(np.full(N - 1, -1.0), 1)
         + np.diag(np.full(N - 1, -1.0), -1))
    b = A @ x_true

    machine = Machine(Mesh2D(P_ROWS, P_COLS), PARAGON)
    run = machine.run(cg_program, b)

    x = np.concatenate([res[0] for res in run.results])
    iters = run.results[0][1]
    resid = run.results[0][2]
    err = np.linalg.norm(x - x_true) / np.linalg.norm(x_true)
    print(f"CG on {P_ROWS * P_COLS} simulated nodes: {iters} iterations, "
          f"residual {resid:.2e}, relative error {err:.2e}")
    print(f"simulated time {run.time * 1e3:.2f} ms over {run.messages} "
          f"messages ({run.bytes_moved / 1e6:.2f} MB moved)")
    assert resid < TOL * 10 and err < 1e-6, "CG failed to converge"
    print("OK: CG converged against the collective library")


if __name__ == "__main__":
    main()
