#!/usr/bin/env python
"""2-D Jacobi iteration on a Cartesian process grid.

The other canonical mesh workload: a 2-D Laplace solve where each rank
owns a tile of the global grid and every iteration needs

* halo exchanges with the four grid neighbours (point-to-point, all
  four transfers overlapping), and
* a global residual norm (1-element allreduce — the latency-critical
  path the MST primitives optimize) through a persistent
  :class:`~repro.core.plans.Plan`.

Runs a fixed-boundary Laplace problem on a simulated 4 x 4 Paragon
submesh and checks the distributed iterate against a sequential solver
running the same sweeps.

Run:  python examples/jacobi_2d.py
"""

import numpy as np

from repro.core import Communicator, make_plan
from repro.core.cartesian import CartGrid
from repro.sim import Machine, Mesh2D, PARAGON

PR, PC = 4, 4            # process grid
TILE = 16                # local tile edge (global grid 64 x 64 interior)
MAXITER = 120
TOL = 1e-4


def sequential_reference(boundary, iters):
    """The same Jacobi sweeps, sequentially, for verification."""
    n = PR * TILE
    u = np.zeros((n + 2, n + 2))
    u[0, :] = boundary
    for _ in range(iters):
        u[1:-1, 1:-1] = 0.25 * (u[:-2, 1:-1] + u[2:, 1:-1]
                                + u[1:-1, :-2] + u[1:-1, 2:])
    return u[1:-1, 1:-1]


def jacobi_program(env, boundary):
    world = Communicator.world(env)
    grid = CartGrid(world, PR, PC)
    pr, pc = grid.coords()

    # local tile with a one-cell halo ring
    u = np.zeros((TILE + 2, TILE + 2))
    if pr == 0:
        # my slice of the hot top edge (Dirichlet): local column j maps
        # to global column pc*TILE + j
        u[0, :] = boundary[pc * TILE:pc * TILE + TILE + 2]

    norm_plan = make_plan(env, "allreduce", 1, op="sum")

    iters = 0
    diff = np.inf
    for it in range(MAXITER):
        iters = it + 1
        # exchange halos: rows (dim 0) then columns (dim 1); the four
        # transfers in each call overlap
        frm_up, frm_dn = yield from grid.halo_exchange(
            0, u[1, 1:-1].copy(), u[-2, 1:-1].copy())
        if frm_up is not None:
            u[0, 1:-1] = frm_up
        if frm_dn is not None:
            u[-1, 1:-1] = frm_dn
        frm_lo, frm_hi = yield from grid.halo_exchange(
            1, u[1:-1, 1].copy(), u[1:-1, -2].copy(), tag=8)
        if frm_lo is not None:
            u[1:-1, 0] = frm_lo
        if frm_hi is not None:
            u[1:-1, -1] = frm_hi

        new = 0.25 * (u[:-2, 1:-1] + u[2:, 1:-1]
                      + u[1:-1, :-2] + u[1:-1, 2:])
        yield env.compute(4 * TILE * TILE)
        local = np.array([float(np.max(np.abs(new - u[1:-1, 1:-1])))])
        u[1:-1, 1:-1] = new

        # global convergence check: max-norm via a 1-element allreduce
        total = yield from norm_plan(local)
        diff = float(total[0]) / (PR * PC)  # op is sum; bound the max
        if float(total[0]) < TOL:
            break

    return (pr, pc), u[1:-1, 1:-1].copy(), iters


def main():
    rng = np.random.default_rng(3)
    boundary = np.abs(rng.standard_normal(PC * TILE + 2)) + 1.0

    machine = Machine(Mesh2D(PR, PC), PARAGON)
    run = machine.run(jacobi_program, boundary)
    iters = run.results[0][2]
    print(f"Jacobi on {PR}x{PC} simulated nodes: {iters} iterations, "
          f"simulated {run.time * 1e3:.2f} ms, {run.messages} messages")

    # stitch the tiles and compare against the sequential sweeps
    n = PR * TILE
    u = np.zeros((n, n))
    for (pr, pc), tile, _ in run.results:
        u[pr * TILE:(pr + 1) * TILE, pc * TILE:(pc + 1) * TILE] = tile
    ref = sequential_reference(boundary, iters)
    err = np.max(np.abs(u - ref))
    print(f"max |distributed - sequential| after {iters} sweeps: "
          f"{err:.2e}")
    assert err < 1e-12, "distributed Jacobi diverged from reference"
    print("OK: halo exchanges and allreduce reproduce the sequential "
          "sweep exactly")


if __name__ == "__main__":
    main()
