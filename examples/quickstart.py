#!/usr/bin/env python
"""Quickstart: broadcast and global sum on a simulated Paragon.

Builds the paper's machine (a 16 x 32 wormhole-routed mesh with
Paragon-calibrated alpha/beta/gamma), runs a broadcast and a global sum
through the InterCom library, and compares against the NX baseline —
a miniature Table 3.

Run:  python examples/quickstart.py           # 16x32, a few minutes
      python examples/quickstart.py --small   # 4x8, a few seconds
"""

import sys

import numpy as np

from repro.analysis import format_table, human_bytes
from repro.baselines import NXInterface
from repro.core import api, selector_for
from repro.sim import Machine, Mesh2D, PARAGON


def icc_program(env, n):
    """SPMD rank program using the InterCom API directly."""
    # Broadcast a vector from node 0 to all 512 nodes.
    x = np.arange(n, dtype=np.float64) if env.rank == 0 else None
    x = yield from api.bcast(env, x, root=0, total=n)
    # Global sum, result everywhere.
    total = yield from api.allreduce(env, x, "sum")
    return float(total[0])


def nx_program(env, n):
    """The same workload through the NX compatibility interface."""
    nxif = NXInterface(env, mode="nx")
    x = np.arange(n, dtype=np.float64) if env.rank == 0 else None
    x = yield from nxif.icc_bcast(x, root=0, total=n)
    total = yield from nxif.gdsum(x)
    return float(total[0])


def main():
    small = "--small" in sys.argv[1:]
    rows, cols = (4, 8) if small else (16, 32)
    machine = Machine(Mesh2D(rows, cols), PARAGON)
    print(f"machine: {machine.topology} "
          f"(alpha={PARAGON.alpha * 1e6:.0f}us, "
          f"bandwidth={PARAGON.injection_bandwidth / 1e6:.0f}MB/s)\n")

    table_rows = []
    for nbytes in (8, 64 * 1024, 1024 * 1024):
        n = max(1, nbytes // 8)
        icc = machine.run(icc_program, n)
        nx = machine.run(nx_program, n)
        # both must compute the same answer
        assert icc.results[0] == nx.results[0]
        table_rows.append([human_bytes(nbytes), f"{nx.time:.5f}",
                           f"{icc.time:.5f}", f"{nx.time / icc.time:.2f}"])
    print(format_table(
        ["length", "NX (s)", "InterCom (s)", "ratio"], table_rows,
        title=f"broadcast + global sum on {machine.nnodes} nodes "
              f"({machine.topology})"))

    # What did the library choose, and why?  Ask the selector.
    sel = selector_for(PARAGON, itemsize=8)
    p = machine.nnodes
    print(f"\nstrategies selected for bcast on {p} nodes "
          f"({rows}x{cols} submesh-aware):")
    for nbytes in (8, 64 * 1024, 1024 * 1024):
        n = max(1, nbytes // 8)
        choice = sel.best("bcast", p, n, mesh_shape=(rows, cols))
        print(f"  n={human_bytes(nbytes):>4}B -> {choice.strategy} "
              f"(predicted {choice.cost:.6f}s)")


if __name__ == "__main__":
    main()
