"""Section 9: group collective communication.

"Performance for group operations is maintained by extracting
information about the physical layout of a user-specified group."

Three group flavours on the 16 x 32 mesh, same per-node data volume:

* a physical row (32 nodes) — conflict-free highway;
* a rectangular 8 x 8 submesh — row/column techniques apply;
* an unstructured random 64-node subset — treated as a linear array.

The structured groups must perform close to the whole-machine
per-node rates; the unstructured group pays for its scattered layout
but must still complete correctly."""

import os

import numpy as np
import pytest

from repro.analysis import format_table, write_csv
from repro.core import api, classify
from repro.core.mesh2d import submesh_group
from repro.sim import Machine, Mesh2D, PARAGON

MESH = Mesh2D(16, 32)
MACHINE = Machine(MESH, PARAGON)
NBYTES = 256 * 1024
N = NBYTES // 8


def group_program(env, group):
    if env.rank not in group:
        yield env.delay(0)
        return True
    v = np.full(N, float(env.rank))
    out = yield from api.allreduce(env, v, "sum", group=group)
    return bool(np.allclose(out, float(sum(group))))


def make_groups():
    rng = np.random.default_rng(1994)
    row = MESH.row_nodes(5)
    sub = submesh_group(MESH, 4, 8, 8, 8)
    scattered = sorted(rng.choice(512, size=64, replace=False).tolist())
    return {
        "physical row (32)": row,
        "8x8 submesh (64)": sub,
        "unstructured (64)": scattered,
    }


_CACHE = []


def run_groups():
    if _CACHE:
        return _CACHE[0]
    rows = []
    for label, group in make_groups().items():
        struct = classify(group, MESH)
        res = MACHINE.run(group_program, group)
        assert all(res.results), label
        rows.append([label, struct.kind, len(group), res.time])
    _CACHE.append(rows)
    return rows


def test_group_structure_detection_drives_performance(once, results_dir, report):
    rows = once(run_groups)
    report("\n" + format_table(
        ["group", "detected", "size", "allreduce 256KB (s)"],
        [[a, b, c, f"{d:.5f}"] for a, b, c, d in rows],
        title="Section 9: group allreduce on the 16x32 mesh"))
    write_csv(os.path.join(results_dir, "groups.csv"),
              ["group", "detected", "size", "seconds"], rows)

    by = {r[0]: r for r in rows}
    assert by["physical row (32)"][1] == "row"
    assert by["8x8 submesh (64)"][1] == "submesh"
    assert by["unstructured (64)"][1] == "unstructured"

    # the structured 64-node group must beat the unstructured 64-node
    # group (scattered layout causes conflicts and defeats the
    # mesh-aware strategies)
    assert by["8x8 submesh (64)"][3] < by["unstructured (64)"][3]


def test_group_performance_matches_whole_machine_class(once):
    """A submesh group's per-operation time must be in the same class
    as running the same operation on a whole machine of that shape —
    the claim that the group abstraction costs (almost) nothing."""
    rows = once(run_groups)
    sub_time = {r[0]: r[3] for r in rows}["8x8 submesh (64)"]

    standalone = Machine(Mesh2D(8, 8), PARAGON)

    def prog(env):
        v = np.full(N, float(env.rank))
        out = yield from api.allreduce(env, v, "sum")
        return True

    t_standalone = standalone.run(prog).time
    assert sub_time < t_standalone * 1.25


def test_concurrent_row_groups_do_not_interfere(once):
    """All 16 rows reducing simultaneously: XY routing keeps each row's
    traffic inside the row, so the elapsed time must equal a single
    row's time (no cross-row conflicts)."""
    def all_rows(env):
        row = MESH.row_nodes(env.rank // 32)
        v = np.full(N, 1.0)
        out = yield from api.allreduce(env, v, "sum", group=row)
        return bool(np.allclose(out, 32.0))

    def one_row(env):
        row = MESH.row_nodes(0)
        if env.rank not in row:
            yield env.delay(0)
            return True
        v = np.full(N, 1.0)
        out = yield from api.allreduce(env, v, "sum", group=row)
        return bool(np.allclose(out, 32.0))

    def run_both():
        return MACHINE.run(all_rows), MACHINE.run(one_row)

    t_all, t_one = once(run_both)
    assert all(t_all.results) and all(t_one.results)
    assert t_all.time == pytest.approx(t_one.time, rel=1e-6)
