"""Figure 4 (left): measured collect on a 16 x 32 physical mesh.

The paper's figure shows the hybrid library's collect across message
lengths on the power-of-two-friendly 512-node partition.  We sweep the
same machine with the pure short algorithm (gather + MST broadcast),
the pure long algorithm (ring bucket collect), the library's auto
hybrid (mesh-aware two-phase buckets), and the NX baseline — and check
the shape: the hybrid tracks the best pure algorithm everywhere and
beats the single-technique baseline for long vectors."""

import os

import numpy as np
import pytest

from repro.analysis import (Series, format_table, human_bytes, plot_series,
                            series_to_rows, sweep_operation, write_csv)
from repro.baselines.nx import nx_collect
from repro.core.context import CollContext
from repro.core.partition import partition_offsets, partition_sizes
from repro.sim import Machine, Mesh2D, PARAGON

MACHINE = Machine(Mesh2D(16, 32), PARAGON)
LENGTHS = [8, 512, 8 * 1024, 64 * 1024, 512 * 1024, 1 << 20]


def nx_program(env, n):
    ctx = CollContext(env)
    p = env.nranks
    sizes = partition_sizes(n, p)
    offs = partition_offsets(sizes)
    mine = np.arange(offs[env.rank], offs[env.rank + 1], dtype=np.float64)
    out = yield from nx_collect(ctx, mine, sizes=sizes)
    assert len(out) == n
    return True


_CACHE = []


def run_fig4():
    if _CACHE:
        return _CACHE[0]
    series = sweep_operation(
        MACHINE, "collect", LENGTHS,
        {"short (gather+bcast)": "short",
         "long (ring bucket)": "long",
         "iCC hybrid (auto)": "auto",
         "NX gcolx": nx_program})
    _CACHE.append(series)
    return series


def test_fig4_collect_curves(once, results_dir, report):
    series = once(run_fig4)
    report("\n" + plot_series(
        series, title="Figure 4 (left): collect on a 16x32 mesh "
                      "(simulated Paragon)"))
    rows = series_to_rows(series)
    from repro.analysis import write_svg
    write_svg(os.path.join(results_dir, "fig4_collect.svg"), series,
              title="Figure 4 (left): collect on a 16x32 mesh")
    write_csv(os.path.join(results_dir, "fig4_collect.csv"),
              ["algorithm", "bytes", "seconds"], rows)
    report(format_table(
        ["algorithm", "length", "time (s)"],
        [[lab, human_bytes(nb), f"{t:.6f}"] for lab, nb, t in rows]))

    by = {s.label: s for s in series}
    auto = by["iCC hybrid (auto)"]
    short = by["short (gather+bcast)"]
    long_ = by["long (ring bucket)"]
    nx = by["NX gcolx"]

    # the hybrid must track (or beat) the best pure algorithm at every
    # length, within a small tolerance
    for n in LENGTHS:
        assert auto.time_at(n) <= min(short.time_at(n),
                                      long_.time_at(n)) * 1.05

    # long vectors: the mesh-aware hybrid beats the NX baseline clearly
    # (the paper's 5.1x at 1 MB)
    assert nx.time_at(1 << 20) / auto.time_at(1 << 20) > 2.0
    # and beats the pure ring, whose (p-1) alpha latency never pays off
    assert auto.time_at(8) < long_.time_at(8) / 4


def test_fig4_collect_bandwidth_saturates(once):
    """For long vectors the effective collect bandwidth must approach
    the injection bandwidth (the bucket algorithms are asymptotically
    optimal: total time ~ ((p-1)/p) n beta)."""
    series = once(run_fig4)
    auto = {s.label: s for s in series}["iCC hybrid (auto)"]
    t = auto.time_at(1 << 20)
    beta_effective = t / (1 << 20)
    assert beta_effective < 2.5 * PARAGON.beta
