"""Figure 4 (right): measured broadcast on a 15 x 30 physical mesh.

The deliberately awkward partition: 450 = 2 * 3^2 * 5^2 nodes, far from
a power of two — the case the paper's building blocks were designed for
("do not require power-of-two size partitions").  We sweep the same
algorithms as the collect figure and additionally verify that the
non-power-of-two machine costs only marginally more than a comparable
power-of-two one."""

import math
import os

import numpy as np
import pytest

from repro.analysis import (format_table, human_bytes, plot_series,
                            series_to_rows, sweep_operation, write_csv)
from repro.baselines.nx import nx_bcast
from repro.core.context import CollContext
from repro.sim import Machine, Mesh2D, PARAGON

MACHINE = Machine(Mesh2D(15, 30), PARAGON)
LENGTHS = [8, 512, 8 * 1024, 64 * 1024, 512 * 1024, 1 << 20]


def nx_program(env, n):
    ctx = CollContext(env)
    buf = np.zeros(n) if env.rank == 0 else None
    out = yield from nx_bcast(ctx, buf, root=0)
    assert len(out) == n
    return True


_CACHE = []


def run_fig4b():
    if _CACHE:
        return _CACHE[0]
    series = sweep_operation(
        MACHINE, "bcast", LENGTHS,
        {"short (MST)": "short",
         "long (scatter+collect)": "long",
         "iCC hybrid (auto)": "auto",
         "NX csend(-1)": nx_program})
    _CACHE.append(series)
    return series


def test_fig4_broadcast_curves(once, results_dir, report):
    series = once(run_fig4b)
    report("\n" + plot_series(
        series, title="Figure 4 (right): broadcast on a 15x30 mesh "
                      "(450 nodes, non-power-of-two)"))
    rows = series_to_rows(series)
    from repro.analysis import write_svg
    write_svg(os.path.join(results_dir, "fig4_broadcast.svg"), series,
              title="Figure 4 (right): broadcast on a 15x30 mesh")
    write_csv(os.path.join(results_dir, "fig4_broadcast.csv"),
              ["algorithm", "bytes", "seconds"], rows)
    report(format_table(
        ["algorithm", "length", "time (s)"],
        [[lab, human_bytes(nb), f"{t:.6f}"] for lab, nb, t in rows]))

    by = {s.label: s for s in series}
    auto = by["iCC hybrid (auto)"]
    short = by["short (MST)"]
    long_ = by["long (scatter+collect)"]
    nx = by["NX csend(-1)"]

    # hybrid tracks the best pure algorithm everywhere
    for n in LENGTHS:
        assert auto.time_at(n) <= min(short.time_at(n),
                                      long_.time_at(n)) * 1.05
    # short messages: MST and hybrid effectively tie; the ring is awful
    assert auto.time_at(8) <= short.time_at(8) * 1.01
    assert long_.time_at(8) > 5 * auto.time_at(8)
    # long messages: order-of-magnitude class win over NX
    # (the paper's 12.5x for the 16x32 partition)
    assert nx.time_at(1 << 20) / auto.time_at(1 << 20) > 5.0
    # crossover between short and long pure algorithms inside the sweep
    d = [short.time_at(n) - long_.time_at(n) for n in LENGTHS]
    assert d[0] < 0 < d[-1]


def test_non_power_of_two_costs_little(once):
    """450 nodes is 'non-power-of-two hostile' for tree algorithms, yet
    the hybrid broadcast on 15x30 must stay within a modest factor of
    the 16x32 (512-node) machine at 1 MB — the building blocks do not
    round up to powers of two."""
    series = once(run_fig4b)
    auto_450 = {s.label: s for s in series}["iCC hybrid (auto)"]

    machine_512 = Machine(Mesh2D(16, 32), PARAGON)
    from repro.analysis import run_operation
    t_512 = run_operation(machine_512, "bcast", 1 << 20,
                          algorithm="auto").time
    t_450 = auto_450.time_at(1 << 20)
    assert t_450 < t_512 * 1.6
