"""Section 8: the "theoretically superior" pipelined (EDST-class)
broadcast versus the library's scatter/collect — and why the library
ships the simpler algorithm anyway.

Two experiments on a 64-node hypercube (the iPSC/860 setting of
section 11):

1. *Clean machine*: the pipelined broadcast approaches ``n beta`` for
   long vectors — up to twice the scatter/collect throughput, exactly
   the Ho-Johnsson advantage the paper concedes.
2. *Jittery OS*: per-forward timing noise (the "timing irregularities
   resulting from the more complex operating systems of current
   generation machines") accumulates across the deep pipeline and
   erases the advantage, while the shallow scatter/collect barely
   notices — the paper's justification made quantitative."""

import os

import numpy as np
import pytest

from repro.analysis import format_table, human_bytes, write_csv
from repro.core import api
from repro.core.context import CollContext
from repro.extensions import edst_bcast, gray_code_group
from repro.sim import Hypercube, Machine, PARAGON

CUBE = Hypercube(6)
MACHINE = Machine(CUBE, PARAGON)
GROUP = gray_code_group(CUBE)
LENGTHS = [64 * 1024, 1 << 20, 4 << 20, 16 << 20, 64 << 20]
JITTER = PARAGON.alpha * 2.0


def pipelined_program(env, n, jitter):
    ctx = CollContext(env, GROUP)
    buf = np.zeros(n) if ctx.rank == 0 else None
    out = yield from edst_bcast(
        ctx, buf, root=0, total=n,
        jitter=(lambda: JITTER) if jitter else None)
    assert len(out) == n
    return True


def sc_program(env, n, jitter):
    # the library's scatter/collect broadcast; jitter applied as one
    # extra delay per rank per stage boundary (it has ~log p + p serial
    # stages total, so per-rank noise barely compounds)
    if jitter:
        yield env.delay(JITTER)
    buf = np.zeros(n) if env.rank == 0 else None
    out = yield from api.bcast(env, buf, root=0, total=n,
                               algorithm="long")
    if jitter:
        yield env.delay(JITTER)
    assert len(out) == n
    return True


_CACHE = []


def run_edst():
    if _CACHE:
        return _CACHE[0]
    rows = []
    for n_bytes in LENGTHS:
        n = n_bytes // 8
        t_sc = MACHINE.run(sc_program, n, False).time
        t_pipe = MACHINE.run(pipelined_program, n, False).time
        t_pipe_j = MACHINE.run(pipelined_program, n, True).time
        rows.append([n_bytes, t_sc, t_pipe, t_sc / t_pipe, t_pipe_j,
                     t_sc / t_pipe_j])
    _CACHE.append(rows)
    return rows


def test_edst_factor_of_two_for_long_vectors(once, results_dir, report):
    rows = once(run_edst)
    report("\n" + format_table(
        ["length", "scatter/collect (s)", "pipelined (s)", "advantage",
         "pipelined+jitter (s)", "advantage w/ jitter"],
        [[human_bytes(nb), f"{a:.4f}", f"{b:.4f}", f"{r1:.2f}",
          f"{c:.4f}", f"{r2:.2f}"]
         for nb, a, b, r1, c, r2 in rows],
        title="Section 8: pipelined (EDST-class) vs scatter/collect "
              "broadcast, 64-node hypercube"))
    write_csv(os.path.join(results_dir, "edst_hypercube.csv"),
              ["bytes", "scatter_collect_s", "pipelined_s", "advantage",
               "pipelined_jitter_s", "advantage_jitter"], rows)

    advantages = [r[3] for r in rows]
    # the advantage grows with vector length toward the factor of two:
    # the optimal pipeline time is (sqrt((p-2) alpha) + sqrt(n beta))^2,
    # so the ratio against 2 n beta tends to 2 from below
    assert all(b >= a - 0.02 for a, b in zip(advantages, advantages[1:]))
    assert advantages[-1] > 1.7
    assert advantages[-1] < 2.0  # bounded by the theoretical factor


def test_jitter_erases_the_theoretical_win(once):
    """With OS noise the 'theoretically superior' algorithm loses its
    edge: the jittered advantage must be meaningfully below the clean
    advantage at every length."""
    rows = once(run_edst)
    for nb, t_sc, t_pipe, adv, t_jit, adv_jit in rows:
        assert t_jit > t_pipe
        assert adv_jit < adv
    # at the shorter lengths the jittered pipeline is at best marginal
    assert rows[0][5] < 1.2
