"""Service benchmark: closed-loop tenants over one shared fabric.

Usage (from the repo root)::

    PYTHONPATH=src python -m benchmarks.service.run               # full
    PYTHONPATH=src python -m benchmarks.service.run --grid smoke  # CI
    PYTHONPATH=src python -m benchmarks.service.run --check       # gate

Each grid cell runs one seeded workload (:mod:`repro.service.traffic`)
twice — fusion **on** and fusion **off**, same traffic, same
scheduling — on one backend (simulated Paragon mesh, process runtime
over pipes, or process runtime over TCP sockets), and records
throughput, virtual-latency percentiles, fusion ratio, and per-tenant
fairness for both runs side by side.

The gates (``--check``; enforced by the ``service-smoke`` CI job and
documented in docs/service.md):

* **bit-exact fusion** — every request delivered by both the fused and
  the unfused run must return byte-identical payloads on every member
  rank (the fusion planner may change the combine tree, never the
  answer);
* **fused speedup** — the small-message storm must complete >= 2x more
  requests per second with fusion on than off, on every backend in the
  grid (the headline message-combining win);
* **fairness floor** — under the symmetric storm, no tenant's
  service-time share may fall below half its fair share
  (``0.5 / ntenants``);
* **zero silent drops** — every submitted request ends in exactly one
  typed outcome (ok / rejected / dead-letter) on every run.

The committed ``BENCH_service.json`` is a full-grid run.  Workloads
are seeded and the service plans on a virtual clock, so the plans —
and therefore every gate except wall-clock throughput — reproduce
bit-identically on any host.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import socket
import sys
import time

import numpy as np

_HERE = os.path.dirname(os.path.abspath(__file__))
_REPO = os.path.dirname(os.path.dirname(_HERE))
sys.path.insert(0, os.path.join(_REPO, "src"))

from repro.service import (ServiceConfig, bursty_spec, mixed_spec,  # noqa: E402
                           serve_workload, storm_spec)

DEFAULT_OUTPUT = os.path.join(_REPO, "BENCH_service.json")

SPEEDUP_FLOOR = 2.0          #: fused vs unfused storm throughput gate
FAIRNESS_SHARE_FLOOR = 0.5   #: min tenant share >= this / ntenants

#: per-workload service policy; bursty runs against a rate limiter so
#: typed rejections are actually exercised end to end
_CONFIGS = {
    "storm": dict(),
    "mixed": dict(),
    "bursty": dict(admission_rate=120.0, admission_burst=4.0,
                   queue_cap=32),
}

_SPECS = {
    "storm": lambda: storm_spec(tenants=4, requests=30, window=8),
    "mixed": lambda: mixed_spec(tenants=4, requests=20, window=6),
    "bursty": lambda: bursty_spec(tenants=3, requests=30, window=16),
}

_SEEDS = {"storm": 11, "mixed": 23, "bursty": 37}

GRIDS = {
    "smoke": (("storm", "sim"), ("mixed", "sim"), ("bursty", "sim"),
              ("storm", "runtime")),
    "full": (("storm", "sim"), ("mixed", "sim"), ("bursty", "sim"),
             ("storm", "runtime"), ("mixed", "runtime"),
             ("storm", "runtime-tcp")),
}


def _machine(backend: str):
    if backend == "sim":
        from repro.sim import Machine, Mesh2D, PARAGON
        return Machine(Mesh2D(2, 4), PARAGON)
    from repro.runtime import ProcessMachine
    transport = "tcp" if backend == "runtime-tcp" else "local"
    return ProcessMachine(nprocs=4, transport=transport)


def _compare_results(fused, unfused) -> dict:
    """Bit-exactness of per-request results across the two runs.

    Admission is clocked on the virtual timeline, which fusion shifts,
    so a rate-limited workload may admit slightly different request
    sets; the gate compares the intersection (and reports both sides'
    totals so a collapse would be visible).
    """
    common = sorted(set(fused.results) & set(unfused.results))
    mismatches = []
    compared = 0
    for rid in common:
        ranks = set(fused.results[rid]) & set(unfused.results[rid])
        for rank in sorted(ranks):
            va = fused.results[rid][rank]
            vb = unfused.results[rid][rank]
            compared += 1
            if va is None and vb is None:
                continue
            if va is None or vb is None or \
                    np.asarray(va).shape != np.asarray(vb).shape or \
                    not (np.asarray(va) == np.asarray(vb)).all():
                mismatches.append({"rid": rid, "rank": rank})
    return {
        "requests_compared": len(common),
        "values_compared": compared,
        "only_fused": len(set(fused.results) - set(unfused.results)),
        "only_unfused": len(set(unfused.results) - set(fused.results)),
        "mismatches": mismatches,
        "bit_exact": not mismatches,
    }


def _run_side(backend: str, workload: str, fusion: bool) -> "object":
    spec = _SPECS[workload]()
    config = ServiceConfig(fusion=fusion, **_CONFIGS[workload])
    machine = _machine(backend)
    trace = backend == "sim"   # measured shares need spans; cheap on sim
    return serve_workload(machine, spec, seed=_SEEDS[workload],
                          config=config, trace=trace)


def run_cell(workload: str, backend: str) -> dict:
    spec = _SPECS[workload]()
    fused = _run_side(backend, workload, fusion=True)
    unfused = _run_side(backend, workload, fusion=False)
    cmp = _compare_results(fused, unfused)
    speedup = (fused.requests_per_s / unfused.requests_per_s
               if unfused.requests_per_s > 0 else float("nan"))
    return {
        "id": f"{workload}/{backend}",
        "workload": workload,
        "backend": backend,
        "world_size": fused.plan.world_size,
        "tenants": len(spec.tenants),
        "spec": spec.to_dict(),
        "config": {"fused": ServiceConfig(
            fusion=True, **_CONFIGS[workload]).to_dict()},
        "fused": fused.to_dict(),
        "unfused": unfused.to_dict(),
        "speedup": speedup,
        "comparison": cmp,
    }


def evaluate(records) -> dict:
    """Aggregate gate verdicts over cell records."""
    violations = {"bit_exact": [], "speedup": [], "fairness": [],
                  "silent_drop": []}
    for rec in records:
        if not rec["comparison"]["bit_exact"]:
            violations["bit_exact"].append(rec["id"])
        for side in ("fused", "unfused"):
            if not rec[side]["accounted"]:
                violations["silent_drop"].append(f"{rec['id']}:{side}")
        if rec["workload"] == "storm":
            if not rec["speedup"] >= SPEEDUP_FLOOR:
                violations["speedup"].append(rec["id"])
            floor = FAIRNESS_SHARE_FLOOR / rec["tenants"]
            shares = rec["fused"]["tenant_shares"]
            if not shares or min(shares.values()) < floor:
                violations["fairness"].append(rec["id"])
    gates = {
        "bit_exact_fused_vs_unfused": not violations["bit_exact"],
        "storm_fused_speedup_2x": not violations["speedup"],
        "storm_fairness_floor": not violations["fairness"],
        "zero_silent_drops": not violations["silent_drop"],
    }
    return {
        "violations": {k: v for k, v in violations.items() if v},
        "gates": gates,
        "passed": all(gates.values()),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--grid", choices=sorted(GRIDS), default="full")
    ap.add_argument("--output", default=DEFAULT_OUTPUT,
                    help="where to write the JSON report")
    ap.add_argument("--check", action="store_true",
                    help="exit nonzero if any gate fails")
    ap.add_argument("--verbose", action="store_true",
                    help="print one line per cell as it runs")
    args = ap.parse_args(argv)

    t0 = time.time()
    records = []
    for workload, backend in GRIDS[args.grid]:
        rec = run_cell(workload, backend)
        records.append(rec)
        if args.verbose:
            print(f"{rec['id']:24s} speedup={rec['speedup']:.2f}x "
                  f"fusion={rec['fused']['fusion_ratio']:.2f} "
                  f"fair={rec['fused']['fairness_index']:.3f} "
                  f"bit_exact={rec['comparison']['bit_exact']}",
                  flush=True)
    verdict = evaluate(records)

    report = {
        "grid": args.grid,
        "generated_by": "benchmarks/service/run.py",
        "elapsed_s": time.time() - t0,
        "host": {"hostname": socket.gethostname(),
                 "machine": platform.machine(),
                 "python": platform.python_version()},
        "gates": {
            "speedup_floor": SPEEDUP_FLOOR,
            "fairness_share_floor": FAIRNESS_SHARE_FLOOR,
            **verdict["gates"],
        },
        "passed": verdict["passed"],
        "violations": verdict["violations"],
        "cells": records,
    }
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=1, sort_keys=True, default=float)
        fh.write("\n")
    print(f"wrote {args.output}: {len(records)} cells, "
          f"passed={verdict['passed']}")
    if verdict["violations"]:
        print(json.dumps(verdict["violations"], indent=1))
    if args.check and not verdict["passed"]:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
