"""Multi-tenant service benchmark: ``BENCH_service.json``."""
