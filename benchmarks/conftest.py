"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper:

* it runs the relevant simulations / cost-model evaluations once
  (``benchmark.pedantic`` with a single round — the scientific output is
  the *simulated* time, which is deterministic; wall time only measures
  the simulator),
* prints the paper-style table or ASCII figure,
* writes a machine-readable CSV under ``bench_results/``, and
* asserts the qualitative *shape* the paper reports (who wins, rough
  factors, crossovers).
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "bench_results")


@pytest.fixture
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir, request):
    """Print-and-persist: emitted text goes to stdout (visible with
    ``pytest -s``) and to ``bench_results/<test name>.txt`` so the
    paper-style tables survive captured runs."""
    lines = []

    def emit(text):
        print(text)
        lines.append(str(text))

    yield emit
    if lines:
        path = os.path.join(RESULTS_DIR, request.node.name + ".txt")
        with open(path, "w") as f:
            f.write("\n".join(lines) + "\n")


@pytest.fixture
def once(benchmark):
    """Run a function exactly once under pytest-benchmark (the runs are
    deterministic simulations; repeating them only wastes wall time)."""
    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)
    return run
