"""Ablations of the design choices DESIGN.md calls out.

1. **Long-vector stages early** (section 6's provable heuristic): a
   strategy that scatters the big factor before the conflict-prone
   kernel beats the reverse order.
2. **Mesh-aware bucket latency** (section 7.1): two-phase (r + c - 2)
   alpha versus the linear-array ring's (p - 1) alpha.
3. **Excess link capacity** (section 7.1's Paragon refinement): raising
   the per-channel capacity collapses the interleaving penalty the
   linear-array hybrids pay.
4. **Recursion overhead** (section 7.2): sweeping ``sw_overhead`` moves
   the NX-vs-iCC crossover at 8 bytes — the explanation of Table 3's
   short-vector losses.
5. **NX staging copies**: the ``copy_factor`` knob, reported at 1.0 /
   1.5 / 2.0 so the Table 3 shape can be read against an "honest-wire"
   NX too."""

import math
import os

import numpy as np
import pytest

from repro.analysis import format_table, human_bytes, write_csv
from repro.baselines.nx import nx_bcast
from repro.core import CostModel, Strategy, api
from repro.core.context import CollContext
from repro.core.hybrid import hybrid_bcast, hybrid_collect
from repro.sim import LinearArray, Machine, Mesh2D, PARAGON, UNIT


class TestStageOrderAblation:
    def test_scatter_big_factor_first(self, once, results_dir,
                                      report):
        """Simulated, not just modelled: (15x2, SMC) vs (2x15, SMC) on
        a 30-node linear array with a long vector."""
        n = 30_000

        def prog(env, dims):
            ctx = CollContext(env)
            buf = np.zeros(n) if env.rank == 0 else None
            out = yield from hybrid_bcast(ctx, buf, 0,
                                          Strategy(dims, "SMC"), total=n)
            assert len(out) == n
            return True

        machine = Machine(LinearArray(30), UNIT)

        def run():
            big_first = machine.run(prog, (15, 2)).time
            small_first = machine.run(prog, (2, 15)).time
            return big_first, small_first

        big_first, small_first = once(run)
        report(f"\nstage order: scatter-15-then-MST-2 = {big_first:.0f}, "
              f"scatter-2-then-MST-15 = {small_first:.0f}")
        write_csv(os.path.join(results_dir, "ablation_stage_order.csv"),
                  ["order", "time"],
                  [["big_factor_first", big_first],
                   ["small_factor_first", small_first]])
        assert big_first < small_first


class TestMeshLatencyAblation:
    def test_two_phase_vs_ring_latency(self, once, results_dir,
                                       report):
        """Collect of tiny blocks on 16x32: (r + c - 2) = 46 startups
        versus the ring's 511."""
        machine = Machine(Mesh2D(16, 32), PARAGON)

        def prog(env, strategy):
            ctx = CollContext(env)
            mine = np.full(1, float(env.rank))
            out = yield from hybrid_collect(ctx, mine, strategy)
            assert len(out) == 512
            return True

        def run():
            two_phase = machine.run(prog, Strategy((32, 16), "CC")).time
            ring = machine.run(prog, Strategy((512,), "C")).time
            return two_phase, ring

        two_phase, ring = once(run)
        report(f"\nmesh bucket latency: two-phase = {two_phase * 1e3:.2f} "
              f"ms, ring = {ring * 1e3:.2f} ms "
              f"(ratio {ring / two_phase:.1f})")
        write_csv(os.path.join(results_dir, "ablation_mesh_latency.csv"),
                  ["algorithm", "time"],
                  [["two_phase", two_phase], ["ring", ring]])
        # alpha rounds: 46 vs 511 -> about an 11x latency gap
        assert ring / two_phase > 6.0


class TestLinkCapacityAblation:
    @pytest.mark.parametrize("capacity", [1.0, 2.0, 4.0])
    def test_interleaving_penalty_shrinks(self, capacity, once):
        """The stride-2 hybrid on a linear array pays a factor-2 channel
        share at capacity 1 and nothing at capacity >= 2 (section 7.1's
        'each link can accommodate more than one message without
        penalty')."""
        p, n = 8, 4096
        params = UNIT.with_(link_capacity=capacity)
        machine = Machine(LinearArray(p), params)
        s = Strategy((2, 4), "SSCC")

        def prog(env):
            ctx = CollContext(env)
            buf = np.zeros(n) if env.rank == 0 else None
            out = yield from hybrid_bcast(ctx, buf, 0, s, total=n)
            return len(out) == n

        t = once(lambda: machine.run(prog).time)
        cm_free = CostModel(params.with_(link_capacity=1e9), itemsize=8)
        floor = cm_free.hybrid_bcast(s, n, conflicts=[1.0, 1.0])
        if capacity >= 2.0:
            assert t == pytest.approx(floor, rel=0.02)
        else:
            assert t > floor * 1.15


class TestOverheadAblation:
    def test_crossover_moves_with_sw_overhead(self, once,
                                              results_dir, report):
        """Table 3's 8-byte losses come from per-level recursion
        overhead.  With delta = 0 the iCC MST broadcast must match or
        beat NX at 8 bytes; at the calibrated delta it must lose
        slightly."""
        rows = []

        def run():
            for delta in (0.0, 6e-6, 12e-6, 24e-6):
                params = PARAGON.with_(sw_overhead=delta)
                machine = Machine(Mesh2D(16, 32), params)

                def icc(env):
                    buf = np.zeros(1) if env.rank == 0 else None
                    out = yield from api.bcast(env, buf, root=0, total=1,
                                               algorithm="short")
                    return out is not None

                def nxp(env):
                    ctx = CollContext(env)
                    buf = np.zeros(1) if env.rank == 0 else None
                    out = yield from nx_bcast(ctx, buf, root=0)
                    return out is not None

                t_icc = machine.run(icc).time
                t_nx = machine.run(nxp).time
                rows.append([delta, t_nx, t_icc, t_nx / t_icc])
            return rows

        rows = once(run)
        report("\n" + format_table(
            ["sw_overhead (s)", "NX (s)", "iCC (s)", "ratio"],
            [[f"{d:g}", f"{a:.6f}", f"{b:.6f}", f"{r:.2f}"]
             for d, a, b, r in rows],
            title="ablation: recursion overhead vs the 8-byte crossover"))
        write_csv(os.path.join(results_dir, "ablation_overhead.csv"),
                  ["sw_overhead", "nx_s", "icc_s", "ratio"], rows)

        # delta = 0: iCC at least as fast (both are log-depth trees)
        assert rows[0][3] >= 0.98
        # calibrated and beyond: NX wins at 8 bytes, ratio below 1
        assert rows[2][3] < 1.0
        # monotone: more overhead, worse ratio
        ratios = [r[3] for r in rows]
        assert all(b <= a + 1e-9 for a, b in zip(ratios, ratios[1:]))


class TestCopyFactorAblation:
    def test_nx_gap_with_and_without_staging_copies(self, once,
                                                    results_dir, report):
        """Report the 1 MB broadcast gap for copy_factor in {1, 1.5, 2}:
        even with honest wire accounting (1.0) the hybrid must win
        clearly; the calibrated 2.0 reproduces the paper's ~12x."""
        machine = Machine(Mesh2D(16, 32), PARAGON)
        n = (1 << 20) // 8

        def run():
            def icc(env):
                buf = np.zeros(n) if env.rank == 0 else None
                out = yield from api.bcast(env, buf, root=0, total=n)
                return len(out) == n

            t_icc = machine.run(icc).time
            rows = []
            for cf in (1.0, 1.5, 2.0):
                def nxp(env, cf=cf):
                    ctx = CollContext(env)
                    buf = np.zeros(n) if env.rank == 0 else None
                    out = yield from nx_bcast(ctx, buf, root=0,
                                              copy_factor=cf)
                    return len(out) == n

                t_nx = machine.run(nxp).time
                rows.append([cf, t_nx, t_icc, t_nx / t_icc])
            return rows

        rows = once(run)
        report("\n" + format_table(
            ["copy_factor", "NX (s)", "iCC (s)", "ratio"],
            [[f"{c:g}", f"{a:.4f}", f"{b:.4f}", f"{r:.1f}"]
             for c, a, b, r in rows],
            title="ablation: NX staging copies vs the 1 MB broadcast "
                  "gap"))
        write_csv(os.path.join(results_dir, "ablation_copy_factor.csv"),
                  ["copy_factor", "nx_s", "icc_s", "ratio"], rows)

        assert rows[0][3] > 3.0    # honest wire: still a big win
        assert rows[-1][3] > 8.0   # calibrated: order-of-magnitude class
