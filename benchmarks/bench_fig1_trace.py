"""Figure 1: the 12-node broadcast hybrid, step by step.

Regenerates the paper's worked example — a broadcast on a linear array
of 12 nodes with node 0 as root, executed as scatters within subgroups
of two (steps 1-2), MST broadcasts within subgroups of three (steps
3-4), and collects within subgroups of two (steps 5-6) — and prints the
message schedule the figure depicts."""

import os

import numpy as np
import pytest

from repro.analysis import format_table, write_csv
from repro.core import Strategy
from repro.core.context import CollContext
from repro.core.hybrid import hybrid_bcast
from repro.sim import LinearArray, Machine, UNIT

STRATEGY = Strategy((2, 2, 3), "SSMCC")
N = 12  # one element per node, as in the figure's x0..x3 quarters


def run_traced():
    machine = Machine(LinearArray(12), UNIT, trace=True)
    x = np.arange(N, dtype=np.float64)

    def prog(env):
        ctx = CollContext(env)
        buf = x.copy() if env.rank == 0 else None
        out = yield from hybrid_bcast(ctx, buf, 0, STRATEGY, total=N)
        assert np.array_equal(out, x)
        return True

    return machine.run(prog)


def test_fig1_step_schedule(once, results_dir, report):
    run = once(run_traced)
    assert all(run.results)

    steps = run.trace.step_table()
    rows = []
    for step, recs in steps:
        rows.append([step, f"{recs[0].t_match:g}",
                     ", ".join(f"{r.src}->{r.dst}" for r in recs)])
    report("\n" + format_table(
        ["step", "t", "messages"], rows,
        title="Figure 1: broadcast hybrid (2x2x3, SSMCC) on 12 nodes, "
              "root 0"))
    write_csv(os.path.join(results_dir, "fig1_trace.csv"),
              ["step", "t_match", "src", "dst", "nbytes"],
              [[step, r.t_match, r.src, r.dst, r.nbytes]
               for step, recs in steps for r in recs])

    # The stages have no barrier between them, so fast branches start
    # their collects while slow MST branches still run — classify the
    # paper's six logical stages by endpoints and sizes instead.
    recs = run.trace.completed()
    assert len(recs) == 1 + 2 + 8 + 12 + 12

    by_time = sorted(recs, key=lambda r: (r.t_match, r.src))
    # Stage 1: scatter within the root's pair {0,1}: half the vector
    assert (by_time[0].src, by_time[0].dst) == (0, 1)
    assert by_time[0].nbytes == 6 * 8
    # Stage 2: scatters within stride-2 pairs through the holders
    assert {(r.src, r.dst) for r in by_time[1:3]} == {(0, 2), (1, 3)}
    # Stages 3-4: MST broadcasts within the stride-4 triples move
    # quarters from the holders {0..3} to everyone else
    mst = {(r.src, r.dst) for r in recs
           if r.src < 4 and r.dst >= 4}
    assert mst == {(0, 8), (1, 9), (2, 10), (3, 11),
                   (0, 4), (1, 5), (2, 6), (3, 7)}
    # Stage 5: bucket collects within stride-2 pairs (bidirectional
    # exchanges of quarters) — plus the two stage-2 scatter messages
    # that also cross stride 2 with quarter payloads
    stride2 = [r for r in recs if abs(r.src - r.dst) == 2
               and r.nbytes == 3 * 8]
    assert len(stride2) == 12 + 2
    # Stage 6: final collects within adjacent pairs exchange halves —
    # plus the stage-1 scatter, which also moves a half one hop
    final = [r for r in recs if abs(r.src - r.dst) == 1
             and r.nbytes == 6 * 8]
    assert len(final) == 12 + 1

    # "Except for Step 1 and 6, limited network conflicts occur" — and
    # the fluid model reproduces the per-stage conflict factors of the
    # section 6 formulas exactly:
    #   stage 1 (adjacent pair) and stage 6 (adjacent pairs): full rate;
    #   stages 2 and 5 (stride-2 lines): two flows share each channel;
    #   stages 3-4 (stride-4 MST): four concurrent lines share.
    for rec in recs:
        dist = abs(rec.src - rec.dst)
        factor = {1: 1, 2: 2}.get(dist, 4)
        assert rec.duration == pytest.approx(1 + factor * rec.nbytes), \
            (rec.src, rec.dst, rec.nbytes, rec.duration)

    # Consequently the elapsed time equals the section 6 closed form
    # with the bold conflict factors — exactly.
    from repro.core import CostModel
    cm = CostModel(UNIT, itemsize=8)
    assert run.time == pytest.approx(cm.hybrid_bcast(STRATEGY, N))


def test_fig1_piece_sizes_shrink_then_grow(once):
    """The scatters quarter the message; the collects restore it —
    'the strategy benefits from the fact that network conflict is least
    when the vectors sent are long' (Figure 1 caption)."""
    run = once(run_traced)
    recs = sorted(run.trace.completed(), key=lambda r: r.t_match)
    sizes = [r.nbytes for r in recs]
    # 8-byte elements: halves, then quarters, ..., then halves again
    assert sizes[0] == 6 * 8
    assert min(sizes) == 3 * 8
    assert sizes[-1] == 6 * 8
    # total traffic: 1 half + 2 quarters + 8 quarters (MST) +
    # 12 quarters + 12 halves
    assert sum(sizes) == (6 + 2 * 3 + 8 * 3 + 12 * 3 + 12 * 6) * 8
