"""The chaos grid: seeded fault schedules replayed over collectives.

Every case is ``(topology, op, profile, seed)``.  The schedule for a
case is derived from ``random.Random(f"chaos/{case id}")`` — string
seeding is hash-randomization-independent, so a case replays the exact
same fault sequence on every machine (``--grid full`` reproduces the
committed ``CHAOS_report.json`` bit-for-bit modulo hostname/timing
metadata).

Outcome taxonomy (docs/robustness.md):

* ``ok``                — run completed and every delivered payload
                          matches the clean-run oracle;
* ``diagnosed``         — run raised a typed :class:`FaultDiagnosis`
                          naming the injected fault(s);
* ``silent-corruption`` — run completed but a payload differs (NEVER
                          acceptable — this is the bug class the whole
                          subsystem exists to rule out);
* ``undiagnosed-hang``  — run died without attributing the failure to
                          an injected fault (also never acceptable).

Profiles and their allowed outcomes:

================  ============================  =====================
profile           schedule                      allowed
================  ============================  =====================
baseline          empty (passivity probe)       ok, bit-identical time
jitter            match-latency jitter          ok
slowdown          link beta degradation         ok
link-perm         permanent link failure        ok | diagnosed
link-transient    link outage that heals        ok | diagnosed
crash             fail-stop node crash          ok | diagnosed
crash-shrink      crash + ULFM-style shrink()   ok (survivor oracle)
================  ============================  =====================
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core import api
from repro.core.communicator import Communicator
from repro.core.partition import partition_sizes
from repro.sim import (FaultDiagnosis, FaultSchedule, LinearArray,
                       LinkFault, LinkSlowdown, Machine, Mesh2D,
                       NodeCrash, SimulationLimitError, preset)

N = 1024  # vector length (elements) for every collective

TOPOLOGIES: Dict[str, Tuple[tuple, str]] = {
    "mesh4x6": (("mesh", 4, 6), "paragon"),
    "linear12": (("linear", 12), "unit"),
}

OPS = ("bcast", "reduce", "allreduce", "collect", "reduce_scatter")

PROFILES = ("baseline", "jitter", "slowdown", "link-perm",
            "link-transient", "crash", "crash-shrink")

SEEDS = (101, 202, 303)

#: profile -> outcomes that do not fail the gate
ALLOWED = {
    "baseline": {"ok"},
    "jitter": {"ok"},
    "slowdown": {"ok"},
    "link-perm": {"ok", "diagnosed"},
    "link-transient": {"ok", "diagnosed"},
    "crash": {"ok", "diagnosed"},
    "crash-shrink": {"ok"},
}

GRIDS = {
    "full": [(t, o, pr, s) for t in TOPOLOGIES for o in OPS
             for pr in PROFILES for s in SEEDS],
    # CI smoke: one topology, the three most failure-prone profiles
    "smoke": [("mesh4x6", o, pr, s) for o in OPS
              for pr in ("jitter", "link-perm", "crash") for s in SEEDS],
}


def case_id(topo: str, op: str, profile: str, seed: int) -> str:
    return f"{topo}/{op}/{profile}/{seed}"


def _topo(kind: str, *dims):
    return {"linear": LinearArray, "mesh": Mesh2D}[kind](*dims)


def _vec(rank: int, n: int) -> np.ndarray:
    base = np.arange(n, dtype=np.float64)
    return base * (rank % 7 + 1) + rank


# ----------------------------------------------------------------------
# programs and oracles
# ----------------------------------------------------------------------

def _prog(op: str):
    """The op over the full machine, auto-dispatched."""
    def prog(env):
        p = env.nranks
        if op == "bcast":
            buf = _vec(1, N) if env.rank == 0 else None
            out = yield from api.bcast(env, buf, root=0, total=N)
        elif op == "reduce":
            out = yield from api.reduce(env, _vec(env.rank, N), op="sum",
                                        root=0)
        elif op == "allreduce":
            out = yield from api.allreduce(env, _vec(env.rank, N),
                                           op="sum")
        elif op == "collect":
            sizes = partition_sizes(N, p)
            out = yield from api.collect(env, _vec(env.rank,
                                                   sizes[env.rank]),
                                         sizes=sizes)
        elif op == "reduce_scatter":
            out = yield from api.reduce_scatter(env, _vec(env.rank, N),
                                                op="sum")
        else:  # pragma: no cover
            raise ValueError(op)
        return out
    return prog


def _shrink_prog(op: str, crash_t: float):
    """Wait out the crash, shrink the world, run the op on survivors."""
    def prog(env):
        comm = Communicator.world(env)
        yield env.delay(2.0 * crash_t)
        sub = comm.shrink()
        p = sub.size
        me = sub.rank
        if op == "bcast":
            buf = _vec(1, N) if me == 0 else None
            out = yield from sub.bcast(buf, root=0, total=N)
        elif op == "reduce":
            out = yield from sub.reduce(_vec(env.rank, N), op="sum",
                                        root=0)
        elif op == "allreduce":
            out = yield from sub.allreduce(_vec(env.rank, N), op="sum")
        elif op == "collect":
            sizes = partition_sizes(N, p)
            out = yield from sub.allgather(_vec(env.rank, sizes[me]),
                                           sizes=sizes)
        elif op == "reduce_scatter":
            out = yield from sub.reduce_scatter(_vec(env.rank, N),
                                                op="sum")
        else:  # pragma: no cover
            raise ValueError(op)
        return out
    return prog


def _oracle(op: str, members: List[int]) -> List[Optional[np.ndarray]]:
    """Expected per-*member* results (logical order) for the op."""
    p = len(members)
    if op == "bcast":
        x = _vec(1, N)
        return [x for _ in members]
    if op == "reduce":
        total = np.sum([_vec(r, N) for r in members], axis=0)
        return [total if i == 0 else None for i in range(p)]
    if op == "allreduce":
        total = np.sum([_vec(r, N) for r in members], axis=0)
        return [total for _ in members]
    if op == "collect":
        sizes = partition_sizes(N, p)
        full = np.concatenate([_vec(r, sz)
                               for r, sz in zip(members, sizes)])
        return [full for _ in members]
    if op == "reduce_scatter":
        total = np.sum([_vec(r, N) for r in members], axis=0)
        offs = np.concatenate(([0], np.cumsum(partition_sizes(N, p))))
        return [total[offs[i]:offs[i + 1]] for i in range(p)]
    raise ValueError(op)  # pragma: no cover


#: element-wise combines accumulate in strategy-dependent order, so a
#: re-ranked schedule is correct within float tolerance; pure data
#: movement must be bit-exact no matter what the network does
_MOVEMENT_OPS = {"bcast", "collect"}


def _payload_matches(op: str, got, want) -> bool:
    if want is None or got is None:
        # roots-only ops: a None on a non-root is part of the contract
        return (got is None) == (want is None)
    got = np.asarray(got)
    if got.shape != np.asarray(want).shape:
        return False
    if op in _MOVEMENT_OPS:
        return bool(np.array_equal(got, want))
    return bool(np.allclose(got, want, rtol=1e-10, atol=0.0))


# ----------------------------------------------------------------------
# schedule builders
# ----------------------------------------------------------------------

def _build_schedule(profile: str, rng: random.Random, channels, nnodes,
                    alpha: float, t_clean: float
                    ) -> Tuple[FaultSchedule, Optional[float]]:
    """Returns ``(schedule, crash_t)``; ``crash_t`` is set only for the
    shrink profile (the program needs to outwait the crash)."""
    deadline = 5000.0 * t_clean + (1 << 16) * alpha
    if profile == "baseline":
        return FaultSchedule(), None
    if profile == "jitter":
        return FaultSchedule(jitter=alpha * rng.uniform(0.5, 3.0),
                             seed=rng.randrange(2**31),
                             deadline=deadline), None
    if profile == "slowdown":
        events = tuple(
            LinkSlowdown(t=rng.uniform(0.0, 0.5) * t_clean,
                         u=u, v=v, factor=rng.uniform(2.0, 8.0))
            for u, v in rng.sample(channels, 2))
        return FaultSchedule(events=events, deadline=deadline), None
    if profile == "link-perm":
        u, v = rng.choice(channels)
        return FaultSchedule(
            events=(LinkFault(t=rng.uniform(0.0, 0.8) * t_clean,
                              u=u, v=v),),
            deadline=deadline), None
    if profile == "link-transient":
        u, v = rng.choice(channels)
        return FaultSchedule(
            events=(LinkFault(t=rng.uniform(0.0, 0.8) * t_clean,
                              u=u, v=v,
                              duration=rng.uniform(0.5, 1.5) * t_clean),),
            max_retries=14, deadline=deadline), None
    if profile == "crash":
        return FaultSchedule(
            events=(NodeCrash(t=rng.uniform(0.0, 0.9) * t_clean,
                              node=rng.randrange(nnodes)),),
            deadline=deadline), None
    if profile == "crash-shrink":
        crash_t = rng.uniform(0.2, 0.8) * t_clean
        return FaultSchedule(
            events=(NodeCrash(t=crash_t, node=rng.randrange(nnodes)),),
            deadline=deadline), crash_t
    raise ValueError(profile)  # pragma: no cover


# ----------------------------------------------------------------------
# case execution
# ----------------------------------------------------------------------

_CLEAN_CACHE: Dict[Tuple[str, str], Tuple[float, list]] = {}


def _clean_run(topo_name: str, op: str):
    """Clean-run wall clock + results for ``(topology, op)``, cached."""
    key = (topo_name, op)
    if key not in _CLEAN_CACHE:
        spec, params_name = TOPOLOGIES[topo_name]
        machine = Machine(_topo(*spec), preset(params_name))
        run = machine.run(_prog(op))
        _CLEAN_CACHE[key] = (run.time, run.results)
    return _CLEAN_CACHE[key]


def run_case(topo_name: str, op: str, profile: str, seed: int) -> dict:
    """Execute one chaos case and classify the outcome."""
    spec, params_name = TOPOLOGIES[topo_name]
    params = preset(params_name)
    topo = _topo(*spec)
    nnodes = topo.nnodes
    channels = sorted(set(topo.channels()))
    t_clean, clean_results = _clean_run(topo_name, op)

    rng = random.Random(f"chaos/{case_id(topo_name, op, profile, seed)}")
    schedule, crash_t = _build_schedule(profile, rng, channels, nnodes,
                                        params.alpha, t_clean)
    crashed = schedule.crashed_nodes()

    record = {
        "id": case_id(topo_name, op, profile, seed),
        "profile": profile,
        "schedule": schedule.describe(),
        "t_clean": t_clean,
    }

    machine = Machine(topo, params)
    if profile == "crash-shrink":
        prog = _shrink_prog(op, crash_t)
        members = [r for r in range(nnodes) if r not in crashed]
        oracle = _oracle(op, members)
    else:
        prog = _prog(op)
        members = list(range(nnodes))
        oracle = clean_results

    try:
        run = machine.run(prog, faults=schedule)
    except FaultDiagnosis as diag:
        record["outcome"] = "diagnosed"
        record["diagnosis"] = str(diag).splitlines()[0]
        record["watchdog"] = diag.watchdog
        return record
    except (SimulationLimitError, RuntimeError) as exc:
        # DeadlockError or anything else untyped: the fault layer failed
        # to attribute an injected failure — gate-fatal.
        record["outcome"] = "undiagnosed-hang"
        record["error"] = f"{type(exc).__name__}: " + \
            str(exc).splitlines()[0]
        return record

    record["time"] = run.time
    mismatches = []
    for i, member in enumerate(members):
        if member in crashed:
            continue  # a crashed rank's result is undefined
        if not _payload_matches(op, run.results[member], oracle[i]):
            mismatches.append(member)
    if mismatches:
        record["outcome"] = "silent-corruption"
        record["corrupt_ranks"] = mismatches
    else:
        record["outcome"] = "ok"
        if profile == "baseline" and repr(run.time) != repr(t_clean):
            # passivity also pins the clock, not just the payloads
            record["outcome"] = "silent-corruption"
            record["corrupt_ranks"] = []
            record["time_drift"] = (repr(t_clean), repr(run.time))
    return record


def run_case_entry(case: tuple) -> dict:
    """Picklable single-argument adapter for the parallel sweep driver:
    ``case`` is one ``(topo, op, profile, seed)`` grid entry."""
    return run_case(*case)
