"""CLI entry point: replay the chaos grid and emit ``CHAOS_report.json``.

Usage (from the repo root)::

    PYTHONPATH=src python -m benchmarks.chaos.run                # full grid
    PYTHONPATH=src python -m benchmarks.chaos.run --grid smoke   # CI smoke
    PYTHONPATH=src python -m benchmarks.chaos.run --check        # + exit 1
                                                  # on any gate violation

The gates (docs/robustness.md, enforced by the ``chaos-smoke`` CI job):

* **zero silent corruption** — no run may complete with a payload that
  differs from the clean-run / survivor oracle;
* **zero undiagnosed hangs** — every run that cannot complete must
  raise a typed :class:`FaultDiagnosis`, never a bare deadlock;
* **profile contracts** — delay-only profiles (baseline/jitter/
  slowdown) and crash-shrink must complete ``ok``; drop/crash profiles
  may be ``ok`` or ``diagnosed``.

The committed ``CHAOS_report.json`` is the full-grid run (210 seeded
cases); schedules derive from string-seeded RNGs, so a re-run
reproduces the same faults everywhere.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from .cases import ALLOWED, GRIDS, case_id, run_case, run_case_entry

_HERE = os.path.dirname(os.path.abspath(__file__))
_REPO = os.path.dirname(os.path.dirname(_HERE))
DEFAULT_OUTPUT = os.path.join(_REPO, "CHAOS_report.json")

FATAL_OUTCOMES = ("silent-corruption", "undiagnosed-hang")


def evaluate(records) -> dict:
    """Aggregate gate verdicts over per-case records."""
    counts = {}
    violations = []
    for rec in records:
        counts[rec["outcome"]] = counts.get(rec["outcome"], 0) + 1
        if rec["outcome"] not in ALLOWED[rec["profile"]]:
            violations.append(rec["id"])
    gates = {
        "zero_silent_corruption":
            counts.get("silent-corruption", 0) == 0,
        "zero_undiagnosed_hangs":
            counts.get("undiagnosed-hang", 0) == 0,
        "profile_contracts_hold": not violations,
    }
    return {
        "counts": counts,
        "violations": violations,
        "gates": gates,
        "passed": all(gates.values()),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--grid", choices=sorted(GRIDS), default="full")
    ap.add_argument("--output", default=DEFAULT_OUTPUT,
                    help="where to write the JSON report")
    ap.add_argument("--check", action="store_true",
                    help="exit nonzero if any gate fails")
    ap.add_argument("--verbose", action="store_true",
                    help="print one line per case as it runs")
    ap.add_argument("--workers", type=int, default=None,
                    help="shard the grid across this many processes "
                         "(schedules are string-seeded per case, and the "
                         "merge preserves grid order, so the report is "
                         "identical to a serial run; default serial)")
    args = ap.parse_args(argv)

    cases = GRIDS[args.grid]
    t0 = time.perf_counter()
    if args.workers is not None and args.workers != 1:
        from repro.analysis.parallel import parallel_map
        records = parallel_map(run_case_entry, cases,
                               workers=args.workers)
        if args.verbose:
            for rec in records:
                print(f"  {rec['id']:50s} {rec['outcome']}", flush=True)
    else:
        records = []
        for topo, op, profile, seed in cases:
            rec = run_case(topo, op, profile, seed)
            records.append(rec)
            if args.verbose:
                print(f"  {rec['id']:50s} {rec['outcome']}", flush=True)
    wall = time.perf_counter() - t0

    summary = evaluate(records)
    report = {
        "grid": args.grid,
        "cases": len(records),
        "wall_seconds": round(wall, 2),
        **summary,
        "records": records,
    }
    with open(args.output, "w") as f:
        json.dump(report, f, indent=1, sort_keys=False)
        f.write("\n")

    print(f"chaos[{args.grid}]: {len(records)} cases in {wall:.1f}s "
          f"-> {args.output}")
    for outcome, n in sorted(summary["counts"].items()):
        print(f"  {outcome:20s} {n}")
    for gate, ok in summary["gates"].items():
        print(f"  gate {gate:28s} {'PASS' if ok else 'FAIL'}")
    if summary["violations"]:
        for cid in summary["violations"]:
            print(f"  VIOLATION: {cid}", file=sys.stderr)
    if args.check and not summary["passed"]:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
