"""Seeded chaos harness for the fault-injection subsystem.

See :mod:`benchmarks.chaos.cases` for the grid and
:mod:`benchmarks.chaos.run` for the CLI / report writer.
"""
