"""Figure 2: predicted performance of broadcast hybrids on a linear
array of 30 nodes, over message lengths from bytes to a megabyte, with
machine parameters similar to those of the Paragon.

The figure's point: no single strategy wins everywhere — the MST
broadcast wins short, deep scatter/collect hybrids win long, and the
lower envelope (what the library's selector delivers) tracks the best
of all of them."""

import math
import os

import pytest

from repro.analysis import (Series, format_table, human_bytes, plot_series,
                            series_to_rows, write_csv)
from repro.core import CostModel, Selector, Strategy
from repro.sim import PARAGON

P = 30
STRATEGIES = [
    Strategy((30,), "M"),
    Strategy((2, 15), "SMC"),
    Strategy((2, 3, 5), "SSMCC"),
    Strategy((5, 6), "SSCC"),
    Strategy((2, 15), "SSCC"),
    Strategy((30,), "SC"),
]
LENGTHS = [8 * 4 ** k for k in range(9)]  # 8 B .. 512 KB
LENGTHS.append(1 << 20)


def predict():
    cm = CostModel(PARAGON.with_(link_capacity=1.0), itemsize=1)
    series = []
    for s in STRATEGIES:
        ser = Series(str(s))
        for nbytes in LENGTHS:
            ser.add(nbytes, cm.hybrid_bcast(s, nbytes))
        series.append(ser)
    sel = Selector(PARAGON.with_(link_capacity=1.0), itemsize=1)
    best = Series("best (selector)")
    for nbytes in LENGTHS:
        best.add(nbytes, sel.best("bcast", P, nbytes).cost)
    series.append(best)
    return series


def test_fig2_predicted_curves(once, results_dir, report):
    series = once(predict)
    report("\n" + plot_series(
        series, title="Figure 2: predicted broadcast hybrids, "
                      "30-node linear array (Paragon parameters)"))
    from repro.analysis import write_svg
    write_svg(os.path.join(results_dir, "fig2_predicted.svg"), series,
              title="Figure 2: predicted broadcast hybrids, 30-node linear array")
    write_csv(os.path.join(results_dir, "fig2_predicted.csv"),
              ["strategy", "bytes", "seconds"], series_to_rows(series))

    by_label = {s.label: s for s in series}
    mst = by_label["(30, M)"]
    deep = by_label["(2x15, SSCC)"]
    best = by_label["best (selector)"]

    # short vectors: the MST broadcast wins (minimum startups)
    assert mst.time_at(8) == min(s.time_at(8) for s in series)
    # long vectors: the MST broadcast loses badly to the bandwidth
    # hybrids (its 5 n beta against ~3 n beta with conflicts)
    assert deep.time_at(1 << 20) < mst.time_at(1 << 20)
    # a crossover exists strictly inside the sweep
    diffs = [mst.time_at(n) - deep.time_at(n) for n in LENGTHS]
    assert diffs[0] < 0 < diffs[-1]
    # the selector envelope is the lower envelope of all strategies at
    # every length (up to candidate-set coverage)
    for n in LENGTHS:
        floor = min(s.time_at(n) for s in series if s is not best)
        assert best.time_at(n) <= floor * (1 + 1e-9)


def test_fig2_benefits_are_marginal_at_30_nodes(once):
    """The paper: 'While the benefits of these hybrids are marginal for
    30 nodes, this figure provides a representative illustration' —
    the best hybrid should beat the best *pure* algorithm by a modest
    factor (under ~2x) at every length."""
    series = once(predict)
    by_label = {s.label: s for s in series}
    best = by_label["best (selector)"]
    for n in LENGTHS:
        pure = min(by_label["(30, M)"].time_at(n),
                   by_label["(30, SC)"].time_at(n))
        assert best.time_at(n) <= pure
        assert pure / best.time_at(n) < 2.0
