"""Microbenchmark case definitions for the simulator perf harness.

Each case runs one representative collective on a machine of ``p`` nodes
with a total vector of ``nbytes`` bytes and reports wall-clock metrics of
the *simulator* (the simulated result is deterministic; only host time
varies).  The grid follows the paper's Figure 4 sweep axes:

* operations: ring (bucket) collect, hybrid broadcast, ring
  reduce-scatter — the long-vector workhorses plus the flagship hybrid;
* machine sizes ``p`` in {30, 64, 512} (512 is the 16x32 Paragon);
* message sizes ``n`` in {8 B, 64 KB, 1 MB} (Table 3's columns).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core import api
from repro.core.partition import partition_sizes
from repro.sim import PARAGON, Machine, Mesh2D, Ring

#: mesh shapes for the hybrid broadcast (the paper's machines)
_MESH_SHAPES = {30: (5, 6), 64: (8, 8), 512: (16, 32)}


def _elems(nbytes: int) -> int:
    return max(1, nbytes // 8)


def _ring_collect(p: int, nbytes: int) -> Tuple[Machine, Callable]:
    machine = Machine(Ring(p), PARAGON)
    sizes = partition_sizes(_elems(nbytes), p)

    def prog(env):
        blk = np.zeros(sizes[env.rank], dtype=np.float64)
        out = yield from api.collect(env, blk, sizes=sizes,
                                     algorithm="long")
        return len(out)
    return machine, prog


def _hybrid_bcast(p: int, nbytes: int) -> Tuple[Machine, Callable]:
    rows, cols = _MESH_SHAPES[p]
    machine = Machine(Mesh2D(rows, cols), PARAGON)
    n = _elems(nbytes)

    def prog(env):
        buf = np.zeros(n, dtype=np.float64) if env.rank == 0 else None
        out = yield from api.bcast(env, buf, root=0, total=n,
                                   algorithm="auto")
        return len(out)
    return machine, prog


def _reduce_scatter(p: int, nbytes: int) -> Tuple[Machine, Callable]:
    machine = Machine(Ring(p), PARAGON)
    n = _elems(nbytes)

    def prog(env):
        vec = np.zeros(n, dtype=np.float64)
        out = yield from api.reduce_scatter(env, vec, algorithm="long")
        return len(out)
    return machine, prog


OPERATIONS: Dict[str, Callable[[int, int], Tuple[Machine, Callable]]] = {
    "ring_collect": _ring_collect,
    "hybrid_bcast": _hybrid_bcast,
    "reduce_scatter": _reduce_scatter,
}

#: the full grid of the issue (p x nbytes); the smoke grid is a subset
#: small enough for CI.
FULL_GRID: List[Tuple[str, int, int]] = [
    (op, p, n)
    for op in OPERATIONS
    for p in (30, 64, 512)
    for n in (8, 64 * 1024, 1024 * 1024)
]

SMOKE_GRID: List[Tuple[str, int, int]] = [
    (op, p, n)
    for op in OPERATIONS
    for p in (30,)
    for n in (8, 64 * 1024)
] + [("ring_collect", 64, 1024 * 1024)]

GRIDS = {"full": FULL_GRID, "smoke": SMOKE_GRID}


def case_id(op: str, p: int, nbytes: int) -> str:
    return f"{op}/p{p}/n{nbytes}"


def run_case(op: str, p: int, nbytes: int,
             repeats: Optional[int] = None) -> Dict[str, float]:
    """Run one case ``repeats`` times; report the fastest run's metrics.

    The wall time is the minimum over repeats (the standard way to
    suppress scheduler noise for CPU-bound microbenchmarks); the
    simulator statistics are identical across repeats by construction.

    Each case is also timed with channel metrics enabled
    (``wall_s_metrics``): the observability layer promises < 5%
    wall-clock overhead when on and zero when off, and
    ``metrics_overhead`` (fractional slowdown vs the plain run) records
    that promise in BENCH_sim.json.

    The auto-dispatch case (``hybrid_bcast``) additionally gets a fully
    audited timing (``wall_s_audit``): trace + metrics on and the
    ``run.audit`` readback forced, i.e. the complete model-audit path of
    docs/observability.md section 5.  ``audit_overhead`` records the
    fractional slowdown vs the plain run.
    """
    if repeats is None:
        repeats = 3 if p < 512 else 1
    best = None
    best_metrics = None
    best_audit = None
    stats: Dict[str, float] = {}
    for _ in range(repeats):
        machine, prog = OPERATIONS[op](p, nbytes)
        t0 = time.perf_counter()
        run = machine.run(prog)
        wall = time.perf_counter() - t0
        if best is None or wall < best:
            best = wall
        # fresh machine: route/strategy caches must be equally cold for
        # both timings or the comparison is biased
        machine, prog = OPERATIONS[op](p, nbytes)
        t0 = time.perf_counter()
        machine.run(prog, metrics=True)
        wall = time.perf_counter() - t0
        if best_metrics is None or wall < best_metrics:
            best_metrics = wall
        if op == "hybrid_bcast":
            machine, prog = OPERATIONS[op](p, nbytes)
            t0 = time.perf_counter()
            arun = machine.run(prog, trace=True, metrics=True)
            audit = arun.audit
            assert audit is not None and len(audit) == 1
            wall = time.perf_counter() - t0
            if best_audit is None or wall < best_audit:
                best_audit = wall
        stats = {
            "sim_time": run.time,
            "messages": run.messages,
            "rate_recomputations": run.rate_recomputations,
        }
        # events/flows counters exist on the optimized engine only;
        # a baseline captured on an older build simply omits them.
        for opt in ("events", "flows"):
            v = getattr(run, opt, None)
            if v is not None:
                stats[opt] = v
    out = {"wall_s": best, "wall_s_metrics": best_metrics, **stats}
    if best_audit is not None:
        out["wall_s_audit"] = best_audit
    if best:
        out["messages_per_s"] = stats["messages"] / best
        if best_metrics:
            out["metrics_overhead"] = best_metrics / best - 1.0
        if best_audit:
            out["audit_overhead"] = best_audit / best - 1.0
        if "events" in stats:
            out["events_per_s"] = stats["events"] / best
        if "flows" in stats:
            out["flows_per_s"] = stats["flows"] / best
    return out


def run_case_entry(task: Tuple[str, int, int, Optional[int]]) -> Dict[str, float]:
    """Picklable single-argument adapter for the parallel sweep driver:
    ``task`` is ``(op, p, nbytes, repeats)``."""
    op, p, nbytes, repeats = task
    return run_case(op, p, nbytes, repeats=repeats)
