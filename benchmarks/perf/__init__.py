"""Wall-clock performance harness for the simulator itself.

Unlike the paper-reproduction benchmarks (``benchmarks/bench_*.py``,
which report *simulated* time), this package measures how fast the
simulator runs on the host: events/sec, flows/sec, and end-to-end wall
time for representative collectives.  See ``docs/performance.md``.
"""
