"""CLI entry point: run the simulator perf grid and emit ``BENCH_sim.json``.

Usage (from the repo root)::

    PYTHONPATH=src python -m benchmarks.perf.run                 # full grid
    PYTHONPATH=src python -m benchmarks.perf.run --grid smoke    # CI smoke
    PYTHONPATH=src python -m benchmarks.perf.run --update-baseline

``BENCH_sim.json`` records, per case, the current ("after") wall-clock
metrics next to the stored baseline ("before", captured from the
pre-optimization simulator in ``benchmarks/perf/baseline_seed.json``)
and the resulting speedup, so the perf trajectory is tracked from the
first optimization PR onward.  See ``docs/performance.md``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

from .cases import GRIDS, case_id, run_case

_HERE = os.path.dirname(os.path.abspath(__file__))
_REPO = os.path.dirname(os.path.dirname(_HERE))
BASELINE_PATH = os.path.join(_HERE, "baseline_seed.json")
DEFAULT_OUTPUT = os.path.join(_REPO, "BENCH_sim.json")


def load_baseline() -> dict:
    if os.path.exists(BASELINE_PATH):
        with open(BASELINE_PATH) as f:
            return json.load(f)
    return {"cases": {}}


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--grid", choices=sorted(GRIDS), default="full")
    ap.add_argument("--output", default=DEFAULT_OUTPUT,
                    help="where to write the JSON report")
    ap.add_argument("--repeats", type=int, default=None,
                    help="override per-case repeat count")
    ap.add_argument("--update-baseline", action="store_true",
                    help="store this run as the 'before' baseline "
                         "(only for intentional re-baselining)")
    args = ap.parse_args(argv)

    baseline = load_baseline()
    cases = {}
    t_start = time.perf_counter()
    for op, p, n in GRIDS[args.grid]:
        cid = case_id(op, p, n)
        print(f"  {cid} ...", end="", flush=True)
        metrics = run_case(op, p, n, repeats=args.repeats)
        before = baseline.get("cases", {}).get(cid)
        entry = {"after": metrics}
        if before is not None:
            entry["before"] = before
            if before.get("wall_s") and metrics.get("wall_s"):
                entry["speedup"] = before["wall_s"] / metrics["wall_s"]
        cases[cid] = entry
        extra = (f"  ({entry['speedup']:.2f}x vs baseline)"
                 if "speedup" in entry else "")
        if "metrics_overhead" in metrics:
            extra += f"  [+{metrics['metrics_overhead']:.1%} w/ metrics]"
        if "audit_overhead" in metrics:
            extra += f"  [+{metrics['audit_overhead']:.1%} w/ audit]"
        print(f" {metrics['wall_s']:.3f}s{extra}")

    report = {
        "schema": "repro-sim-perf/1",
        "grid": args.grid,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "total_wall_s": time.perf_counter() - t_start,
        "cases": cases,
    }
    overheads = sorted(e["after"]["metrics_overhead"]
                       for e in cases.values()
                       if "metrics_overhead" in e["after"])
    if overheads:
        # median over the grid: single-case numbers are dominated by
        # scheduler jitter (p=512 cases run once); the robust aggregate
        # is what the < 5% observability promise is checked against
        mid = len(overheads) // 2
        med = (overheads[mid] if len(overheads) % 2
               else (overheads[mid - 1] + overheads[mid]) / 2)
        report["metrics_overhead_median"] = med
        print(f"metrics overhead median: {med:+.1%}")
    with open(args.output, "w") as f:
        json.dump(report, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.output}")

    if args.update_baseline:
        snap = {"captured": {"python": platform.python_version()},
                "cases": {cid: e["after"] for cid, e in cases.items()}}
        with open(BASELINE_PATH, "w") as f:
            json.dump(snap, f, indent=1, sort_keys=True)
            f.write("\n")
        print(f"wrote {BASELINE_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
