"""CLI entry point: run the simulator perf grid and emit ``BENCH_sim.json``.

Usage (from the repo root)::

    PYTHONPATH=src python -m benchmarks.perf.run                 # full grid
    PYTHONPATH=src python -m benchmarks.perf.run --grid smoke    # CI smoke
    PYTHONPATH=src python -m benchmarks.perf.run --check         # counter gate
    PYTHONPATH=src python -m benchmarks.perf.run --update-baseline

``BENCH_sim.json`` records, per case, the current ("after") wall-clock
metrics next to the stored baseline ("before", captured from the
pre-optimization simulator in ``benchmarks/perf/baseline_seed.json``)
and the resulting speedup, so the perf trajectory is tracked from the
first optimization PR onward.  See ``docs/performance.md``.

``--check`` gates on the *tracked counters* (simulated time, messages,
events, flows, rate recomputations) against the committed
``BENCH_sim.json``: wall-clock may drift with the host, but a perf
refactor that changes any simulated quantity is a semantics change and
fails loudly here, not just in the golden corpus.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

from .cases import GRIDS, case_id, run_case, run_case_entry

_HERE = os.path.dirname(os.path.abspath(__file__))
_REPO = os.path.dirname(os.path.dirname(_HERE))
BASELINE_PATH = os.path.join(_HERE, "baseline_seed.json")
DEFAULT_OUTPUT = os.path.join(_REPO, "BENCH_sim.json")

#: per-case quantities that must be bit-stable across perf work; all are
#: simulated statistics, independent of host speed.  ``sim_time`` is
#: compared via repr() — exact float equality, not approximate.
TRACKED_COUNTERS = ("sim_time", "messages", "events", "flows",
                    "rate_recomputations")


def load_baseline() -> dict:
    if os.path.exists(BASELINE_PATH):
        with open(BASELINE_PATH) as f:
            return json.load(f)
    return {"cases": {}}


def check_counters(cases: dict, committed_path: str) -> list:
    """Compare tracked counters against the committed report.

    Only cases present in both runs are compared (the committed file is
    normally the full grid; a smoke run checks its subset).  Returns
    failure messages; empty means the gate passed.
    """
    if not os.path.exists(committed_path):
        return [f"no committed report at {committed_path} to check "
                "counters against"]
    with open(committed_path) as f:
        committed = json.load(f)
    failures = []
    overlap = 0
    for cid, entry in sorted(cases.items()):
        want_entry = committed.get("cases", {}).get(cid)
        if want_entry is None:
            continue
        overlap += 1
        got, want = entry["after"], want_entry["after"]
        for counter in TRACKED_COUNTERS:
            if counter not in want:
                continue  # counter landed after the committed report
            g, w = got.get(counter), want[counter]
            same = (repr(g) == repr(w)) if counter == "sim_time" \
                else (g == w)
            if not same:
                failures.append(
                    f"{cid}: {counter} changed {w!r} -> {g!r} "
                    "(simulated semantics drifted; if intentional, "
                    "refresh BENCH_sim.json)")
    if not overlap:
        failures.append(
            f"no overlapping cases between this run and {committed_path}")
    return failures


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--grid", choices=sorted(GRIDS), default="full")
    ap.add_argument("--output", default=DEFAULT_OUTPUT,
                    help="where to write the JSON report")
    ap.add_argument("--repeats", type=int, default=None,
                    help="override per-case repeat count")
    ap.add_argument("--check", action="store_true",
                    help="gate tracked counters (events, flows, "
                         "recomputations, messages, sim time) against "
                         "the committed BENCH_sim.json")
    ap.add_argument("--workers", type=int, default=None,
                    help="shard cases across this many processes "
                         "(deterministic merge; wall-clock numbers are "
                         "then cross-loaded — use serial runs for "
                         "publishable timings)")
    ap.add_argument("--update-baseline", action="store_true",
                    help="store this run as the 'before' baseline "
                         "(only for intentional re-baselining)")
    args = ap.parse_args(argv)

    committed_path = args.output if os.path.exists(args.output) \
        else DEFAULT_OUTPUT

    baseline = load_baseline()
    grid = GRIDS[args.grid]
    t_start = time.perf_counter()
    if args.workers is not None and args.workers != 1:
        from repro.analysis.parallel import parallel_map
        results = parallel_map(
            run_case_entry, [(op, p, n, args.repeats) for op, p, n in grid],
            workers=args.workers)
    else:
        results = []
        for op, p, n in grid:
            print(f"  {case_id(op, p, n)} ...", flush=True)
            results.append(run_case(op, p, n, repeats=args.repeats))

    cases = {}
    for (op, p, n), metrics in zip(grid, results):
        cid = case_id(op, p, n)
        before = baseline.get("cases", {}).get(cid)
        entry = {"after": metrics}
        if before is not None:
            entry["before"] = before
            if before.get("wall_s") and metrics.get("wall_s"):
                entry["speedup"] = before["wall_s"] / metrics["wall_s"]
        cases[cid] = entry
        extra = (f"  ({entry['speedup']:.2f}x vs baseline)"
                 if "speedup" in entry else "")
        if "metrics_overhead" in metrics:
            extra += f"  [+{metrics['metrics_overhead']:.1%} w/ metrics]"
        if "audit_overhead" in metrics:
            extra += f"  [+{metrics['audit_overhead']:.1%} w/ audit]"
        print(f"  {cid} {metrics['wall_s']:.3f}s{extra}")

    failures = []
    if args.check:
        failures = check_counters(cases, committed_path)
        for msg in failures:
            print(f"FAIL: {msg}", file=sys.stderr)
        if not failures:
            print(f"counter check passed: "
                  f"{', '.join(TRACKED_COUNTERS)} stable vs "
                  f"{committed_path}")

    report = {
        "schema": "repro-sim-perf/1",
        "grid": args.grid,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "total_wall_s": time.perf_counter() - t_start,
        "cases": cases,
    }
    overheads = sorted(e["after"]["metrics_overhead"]
                       for e in cases.values()
                       if "metrics_overhead" in e["after"])
    if overheads:
        # median over the grid: single-case numbers are dominated by
        # scheduler jitter (p=512 cases run once); the robust aggregate
        # is what the < 5% observability promise is checked against
        mid = len(overheads) // 2
        med = (overheads[mid] if len(overheads) % 2
               else (overheads[mid - 1] + overheads[mid]) / 2)
        report["metrics_overhead_median"] = med
        print(f"metrics overhead median: {med:+.1%}")
    if args.check:
        # a checking run must not clobber the committed report it
        # compared against; write nothing unless asked via --output
        if args.output != committed_path:
            with open(args.output, "w") as f:
                json.dump(report, f, indent=1, sort_keys=True)
                f.write("\n")
            print(f"wrote {args.output}")
    else:
        with open(args.output, "w") as f:
            json.dump(report, f, indent=1, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.output}")

    if args.update_baseline:
        snap = {"captured": {"python": platform.python_version()},
                "cases": {cid: e["after"] for cid, e in cases.items()}}
        with open(BASELINE_PATH, "w") as f:
            json.dump(snap, f, indent=1, sort_keys=True)
            f.write("\n")
        print(f"wrote {BASELINE_PATH}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
