"""Table 3: NX versus InterCom on the 512-node (16 x 32) Paragon.

The paper's headline numbers: for broadcast, collect (known lengths)
and global sum at 8 bytes, 64 KB and 1 MB, the InterCom library beats
the native NX collectives by up to an order of magnitude for long
vectors, while losing slightly (ratios 0.92 / 0.88) at 8 bytes because
its recursive short-vector primitives carry call overhead.

We assert the *shape*: who wins where, and rough factors — not the
absolute 1994 milliseconds (our substrate is a calibrated simulator).

Paper's measured rows for reference:

    op       length   NX (s)   iCC (s)   ratio
    bcast    8        0.0012   0.0013    0.92
    bcast    64K      0.032    0.013(*)  ~2.5    (*row partly garbled
    bcast    1M       0.94     0.075     12.5     in the source scan)
    collect  8        0.27     0.0035    77.1
    collect  64K      0.031    0.012     2.58
    collect  1M       0.51     0.10      5.10
    gsum     8        0.0036   0.0041    0.88
    gsum     64K      0.17     0.024     7.10
    gsum     1M       2.72     0.17      16.0
"""

import os

import numpy as np
import pytest

from repro.analysis import (TABLE3_LENGTHS, format_table, human_bytes,
                            write_csv)
from repro.baselines import NXInterface
from repro.core import api
from repro.core.partition import partition_offsets, partition_sizes
from repro.sim import Machine, Mesh2D, PARAGON

MACHINE = Machine(Mesh2D(16, 32), PARAGON)


def _bcast(env, n, mode):
    nxif = NXInterface(env, mode=mode)
    x = np.arange(n, dtype=np.float64) if env.rank == 0 else None
    out = yield from nxif.icc_bcast(x, root=0, total=n)
    return bool(np.array_equal(out, np.arange(n, dtype=np.float64)))


def _collect(env, n, mode):
    nxif = NXInterface(env, mode=mode)
    p = env.nranks
    sizes = partition_sizes(n, p)
    offs = partition_offsets(sizes)
    mine = np.arange(offs[env.rank], offs[env.rank + 1],
                     dtype=np.float64)
    out = yield from nxif.gcolx(mine, sizes=sizes)
    return bool(np.array_equal(out, np.arange(n, dtype=np.float64)))


def _gsum(env, n, mode):
    nxif = NXInterface(env, mode=mode)
    v = np.full(n, 1.0)
    out = yield from nxif.gdsum(v)
    return bool(np.allclose(out, float(env.nranks)))


OPS = {"broadcast": _bcast, "collect": _collect, "global sum": _gsum}


_CACHE = []


def run_table3():
    if _CACHE:
        return _CACHE[0]
    rows = []
    for opname, prog in OPS.items():
        for nbytes in TABLE3_LENGTHS:
            n = max(1, nbytes // 8)
            nx = MACHINE.run(prog, n, "nx")
            icc = MACHINE.run(prog, n, "icc")
            assert all(nx.results) and all(icc.results), (opname, nbytes)
            rows.append([opname, nbytes, nx.time, icc.time,
                         nx.time / icc.time])
    _CACHE.append(rows)
    return rows


def test_table3_shape(once, results_dir, report):
    rows = once(run_table3)

    report("\n" + format_table(
        ["operation", "length", "NX (s)", "InterCom (s)", "ratio"],
        [[op, human_bytes(nb), f"{t1:.5f}", f"{t2:.5f}", f"{r:.2f}"]
         for op, nb, t1, t2, r in rows],
        title="Table 3: representative collectives on the 16x32 mesh "
              "(512 nodes)"))
    write_csv(os.path.join(results_dir, "table3_nx_vs_icc.csv"),
              ["operation", "bytes", "nx_seconds", "icc_seconds",
               "ratio"], rows)

    ratio = {(op, nb): r for op, nb, _, _, r in rows}

    # 8-byte messages: NX wins slightly on broadcast and global sum
    # (recursion overhead; the paper's 0.92 / 0.88 rows) — iCC within
    # 2x but not faster by much.
    assert 0.5 < ratio[("broadcast", 8)] < 1.1
    assert 0.5 < ratio[("global sum", 8)] < 1.1
    # ... but the 8-byte *collect* is where NX collapses: its ring
    # gcolx pays p-1 startups against the short collect's 2 log2 p
    # (the paper's 77x row; exact factor depends on alpha calibration)
    assert ratio[("collect", 8)] > 10.0

    # 1 MB: order-of-magnitude class wins for broadcast and global sum
    # (paper: 12.5 and 16.0)
    assert ratio[("broadcast", 1 << 20)] > 6.0
    assert ratio[("global sum", 1 << 20)] > 6.0

    # collect wins but by a smaller factor at 1 MB (paper: 5.1)
    assert 2.0 < ratio[("collect", 1 << 20)] < 25.0

    # 64 KB: iCC ahead for every operation
    for op in OPS:
        assert ratio[(op, 64 * 1024)] > 1.5

    # the iCC advantage grows with vector length for broadcast and
    # global sum (for collect it *shrinks* from the startup-dominated
    # extreme, as in the paper's 77 -> 2.6 -> 5.1 pattern)
    for op in ("broadcast", "global sum"):
        assert ratio[(op, 8)] < ratio[(op, 64 * 1024)] \
            <= ratio[(op, 1 << 20)] * 1.5


def test_table3_absolute_magnitudes(once):
    """Sanity-pin the absolute simulated times to the paper's order of
    magnitude: iCC 1 MB broadcast was 75 ms on the real machine; our
    calibrated simulator must land within a factor of ~3."""
    rows = once(run_table3)
    times = {(op, nb): (t1, t2) for op, nb, t1, t2, _ in rows}
    icc_bcast_1m = times[("broadcast", 1 << 20)][1]
    assert 0.075 / 3 < icc_bcast_1m < 0.075 * 3
    icc_gsum_1m = times[("global sum", 1 << 20)][1]
    assert 0.17 / 3 < icc_gsum_1m < 0.17 * 3
