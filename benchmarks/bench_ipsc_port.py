"""Section 11: the iPSC/860 hypercube port.

"We also have a version tuned for the iPSC/860 that has the same
functionality, but uses algorithms more appropriate for hypercubes."

On a simulated 64-node iPSC/860 cube, compares the mesh library's ring
bucket algorithms (which work anywhere) against the hypercube-native
recursive halving/doubling (which exploit the cube wiring):

* same asymptotic bandwidth term,
* log2(p) startups instead of p-1 — a large win for short and medium
  vectors,
* both conflict-free on the cube.

Also reproduces the short/long trade-off *within* the cube family:
the dimension-exchange allreduce wins for tiny vectors, recursive
halving+doubling for long ones."""

import os

import numpy as np
import pytest

from repro.analysis import format_table, human_bytes, write_csv
from repro.core.context import CollContext
from repro.core.primitives_long import bucket_collect
from repro.extensions.hypercube import (exchange_allreduce, rd_allreduce,
                                        rd_collect)
from repro.sim import Hypercube, IPSC860, Machine

CUBE = Hypercube(6)
MACHINE = Machine(CUBE, IPSC860)
LENGTHS = [8, 1024, 65536, 1 << 20]


def ring_collect_prog(env, nb):
    ctx = CollContext(env)
    out = yield from bucket_collect(ctx, np.zeros(nb))
    return len(out) == nb * 64


def cube_collect_prog(env, nb):
    ctx = CollContext(env)
    out = yield from rd_collect(ctx, np.zeros(nb))
    return len(out) == nb * 64


_CACHE = []


def run_port():
    if _CACHE:
        return _CACHE[0]
    rows = []
    for nbytes in LENGTHS:
        nb = max(1, nbytes // (8 * 64))
        ring = MACHINE.run(ring_collect_prog, nb)
        cube = MACHINE.run(cube_collect_prog, nb)
        assert all(ring.results) and all(cube.results)
        rows.append([nbytes, ring.time, cube.time,
                     ring.time / cube.time])
    _CACHE.append(rows)
    return rows


def test_hypercube_native_collect_wins(once, results_dir, report):
    rows = once(run_port)
    report("\n" + format_table(
        ["total length", "ring bucket (s)", "recursive doubling (s)",
         "speedup"],
        [[human_bytes(nb), f"{a:.6f}", f"{b:.6f}", f"{r:.2f}"]
         for nb, a, b, r in rows],
        title="section 11: collect on a 64-node iPSC/860 cube — "
              "generic ring vs cube-native"))
    write_csv(os.path.join(results_dir, "ipsc_port.csv"),
              ["bytes", "ring_s", "cube_s", "speedup"], rows)

    by = {nb: r for nb, _, _, r in rows}
    # tiny vectors: 63 startups vs 6 -> order of magnitude
    assert by[8] > 6.0
    # long vectors: same beta term, so the gap closes toward 1
    assert 0.95 < by[1 << 20] < 2.0
    # monotone decay of the advantage
    speedups = [r for _, _, _, r in rows]
    assert all(b <= a + 0.05 for a, b in zip(speedups, speedups[1:]))


def test_cube_short_long_crossover(once, report):
    """Even the cube port needs the hybrid idea: dimension exchange
    (latency-optimal) vs halve-then-double (bandwidth-optimal)."""
    def ex(env, n):
        ctx = CollContext(env)
        out = yield from exchange_allreduce(ctx, np.zeros(n), "sum")
        return len(out) == n

    def rd(env, n):
        ctx = CollContext(env)
        out = yield from rd_allreduce(ctx, np.zeros(n), "sum")
        return len(out) == n

    def run():
        out = []
        for nbytes in (8, 1 << 20):
            n = max(64, nbytes // 8)
            t_ex = MACHINE.run(ex, n).time
            t_rd = MACHINE.run(rd, n).time
            out.append((nbytes, t_ex, t_rd))
        return out

    rows = once(run)
    report("\n" + format_table(
        ["length", "dim exchange (s)", "halve+double (s)"],
        [[human_bytes(nb), f"{a:.6f}", f"{b:.6f}"] for nb, a, b in rows],
        title="cube allreduce: short vs long algorithm"))
    (s_nb, s_ex, s_rd), (l_nb, l_ex, l_rd) = rows
    assert s_ex < s_rd     # short: exchange wins on startups
    assert l_rd < l_ex     # long: halve+double wins on bandwidth
