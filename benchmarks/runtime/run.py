"""Microbenchmarks for the process backend: emit ``BENCH_runtime.json``.

Usage (from the repo root)::

    PYTHONPATH=src python -m benchmarks.runtime.run               # full
    PYTHONPATH=src python -m benchmarks.runtime.run --grid smoke  # CI
    PYTHONPATH=src python -m benchmarks.runtime.run --transport tcp

Two experiments, both timed *inside* the rank programs (wall clock
around the message loop, excluding process spawn and mesh wiring):

* **ping-pong** between two rank processes over a range of message
  lengths — the classic alpha/beta characterization (section 11 of the
  paper, :mod:`repro.analysis.calibrate`): half round-trip time is
  ``alpha + n * beta``, so a least-squares line through the samples
  yields the *measured* latency and inverse bandwidth of this host's
  transport.  The report stores the fit next to the configured
  simulator presets — the measured-vs-modelled table of
  docs/runtime.md;
* **collective wall times** on four ranks — per-operation mean wall
  seconds, next to the simulator's *predicted* time for the same
  collective under the fitted params (the model applied to the machine
  the measurement says we have).

The fitted constants describe pickled frames over pipes/sockets on one
host, not a wormhole-routed mesh — expect alpha orders of magnitude
above the Paragon's 100 us and per-byte cost dominated by pickling.
That gap is the point: the paper's porting procedure ("enter a few
parameters that describe the system") applied to the machine at hand.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

import numpy as np

_HERE = os.path.dirname(os.path.abspath(__file__))
_REPO = os.path.dirname(os.path.dirname(_HERE))
DEFAULT_OUTPUT = os.path.join(_REPO, "BENCH_runtime.json")

GRIDS = {
    "smoke": {"lengths": [0, 1024, 65536], "pingpong_reps": 20,
              "coll_ns": [1024], "coll_reps": 5},
    "full": {"lengths": [0, 64, 1024, 16384, 262144, 1048576],
             "pingpong_reps": 50, "coll_ns": [1024, 65536],
             "coll_reps": 20},
}

COLLECTIVES = ["bcast", "allreduce", "collect", "reduce_scatter"]
_COLL_P = 4


def _pingpong_prog(nbytes, reps):
    def prog(env):
        payload = np.zeros(int(nbytes), dtype=np.uint8)
        other = 1 - env.rank
        if env.rank == 0:
            yield env.send(other, payload)      # warm the path
            yield env.recv(other)
            t0 = time.perf_counter()
            for _ in range(reps):
                yield env.send(other, payload)
                yield env.recv(other)
            elapsed = time.perf_counter() - t0
            return elapsed / (2.0 * reps)       # half round trip
        got = yield env.recv(other)
        yield env.send(other, got)
        for _ in range(reps):
            got = yield env.recv(other)
            yield env.send(other, got)
        return None
    return prog


def _collective_prog(op, n, reps):
    def prog(env):
        from repro.core import api
        from repro.core.partition import partition_sizes
        sizes = partition_sizes(n, env.nranks)
        v = np.arange(n, dtype=np.float64) + env.rank
        blk = np.arange(sizes[env.rank], dtype=np.float64) + env.rank
        yield from api.barrier(env)
        t0 = time.perf_counter()
        for _ in range(reps):
            if op == "bcast":
                buf = v if env.rank == 0 else None
                yield from api.bcast(env, buf, root=0, total=n)
            elif op == "allreduce":
                yield from api.allreduce(env, v)
            elif op == "collect":
                yield from api.collect(env, blk, sizes=sizes)
            elif op == "reduce_scatter":
                yield from api.reduce_scatter(env, v, sizes=sizes)
            else:  # pragma: no cover
                raise AssertionError(op)
        return (time.perf_counter() - t0) / reps
    return prog


def measure_pingpong(machine, lengths, reps):
    """Measured (bytes, half-round-trip seconds) per message length."""
    samples = []
    for nbytes in lengths:
        res = machine.run(_pingpong_prog(nbytes, reps), ranks=[0, 1])
        samples.append((int(nbytes), float(res.results[0])))
    return samples


def measure_collectives(machine, ns, reps, fitted_params):
    """Per-collective mean wall seconds and the model's prediction."""
    from repro.core.topology import LinearArray
    from repro.sim import Machine

    out = {}
    predictor = Machine(LinearArray(_COLL_P), fitted_params)
    for op in COLLECTIVES:
        for n in ns:
            res = machine.run(_collective_prog(op, n, reps))
            wall = max(t for t in res.results if t is not None)
            predicted = predictor.run(_collective_prog(op, n, 1)).time
            out[f"{op}/p{_COLL_P}/n{n}"] = {
                "wall_s": wall,
                "predicted_s": predicted,
                "ratio": wall / predicted if predicted > 0 else None,
            }
    return out


def main(argv=None) -> int:
    from repro.analysis.calibrate import fit_alpha_beta
    from repro.core.params import PRESETS
    from repro.runtime import ProcessMachine

    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--grid", choices=sorted(GRIDS), default="full")
    ap.add_argument("--transport", choices=("local", "tcp"),
                    default="local")
    ap.add_argument("--output", default=DEFAULT_OUTPUT,
                    help="where to write the JSON report")
    args = ap.parse_args(argv)
    grid = GRIDS[args.grid]

    print(f"# ping-pong over {args.transport} transport")
    pp_machine = ProcessMachine(2, transport=args.transport, timeout=300)
    samples = measure_pingpong(pp_machine, grid["lengths"],
                               grid["pingpong_reps"])
    alpha, beta = fit_alpha_beta(samples)
    for nbytes, t in samples:
        print(f"  {nbytes:>8} B  {t * 1e6:10.1f} us")
    print(f"  fitted alpha = {alpha * 1e6:.1f} us, "
          f"beta = {beta * 1e9:.3f} ns/B "
          f"({1.0 / beta / 1e6:.1f} MB/s)" if beta > 0 else
          f"  fitted alpha = {alpha * 1e6:.1f} us, beta = 0")

    # predict collectives with the *fitted* machine description
    from repro.core.params import MachineParams
    fitted = MachineParams(alpha=alpha, beta=beta, gamma=1e-9,
                           sw_overhead=0.0, link_capacity=1.0)
    print(f"# collectives on {_COLL_P} ranks")
    coll_machine = ProcessMachine(_COLL_P, transport=args.transport,
                                  timeout=300)
    collectives = measure_collectives(coll_machine, grid["coll_ns"],
                                      grid["coll_reps"], fitted)
    for cid, entry in collectives.items():
        print(f"  {cid:<28} {entry['wall_s'] * 1e6:10.1f} us wall, "
              f"{entry['predicted_s'] * 1e6:10.1f} us predicted")

    report = {
        "meta": {
            "transport": args.transport,
            "grid": args.grid,
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "pingpong": {
            "reps": grid["pingpong_reps"],
            "samples": [[n, t] for n, t in samples],
            "fitted": {"alpha_s": alpha, "beta_s_per_byte": beta},
        },
        "model_presets": {
            name: {"alpha_s": p.alpha, "beta_s_per_byte": p.beta}
            for name, p in sorted(PRESETS.items())
        },
        "collectives": collectives,
    }
    with open(args.output, "w") as f:
        json.dump(report, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
