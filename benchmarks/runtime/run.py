"""Microbenchmarks for the process backend: emit ``BENCH_runtime.json``.

Usage (from the repo root)::

    PYTHONPATH=src python -m benchmarks.runtime.run               # full
    PYTHONPATH=src python -m benchmarks.runtime.run --grid smoke  # CI
    PYTHONPATH=src python -m benchmarks.runtime.run --transport tcp
    PYTHONPATH=src python -m benchmarks.runtime.run --check       # gate

Two experiments:

* **calibration pass** (:mod:`repro.runtime.profile`): ping-pong probes
  at three concurrency levels (plain, disjoint pairs, full ring),
  repeated trials reduced by a deterministic aggregator, gamma from
  real ``np.add``, per-request overhead — fitted into this host's
  persisted :class:`~repro.runtime.profile.MachineProfile`;
* **collective wall times** on four ranks — per-operation wall seconds
  (median over repeated trials of the slowest rank's timed loop), next
  to the simulator's *predicted* time for the same collective under the
  **fitted profile** (the model applied to the machine the measurement
  says we have).

Two calibration bugs this harness used to have, both fixed here and
regression-relevant:

* the predicted time came from a simulated run of the *same rank
  program*, whose wall-clock timer starts after the barrier — but the
  simulator's ``run().time`` included the barrier, inflating every
  prediction by ~4 alpha;
* the measuring :class:`ProcessMachine` ran with ``params=None`` (the
  fixed-threshold auto fallback) while the predictor simulated with the
  fitted constants, so for lengths near the crossover the two backends
  executed *different strategies*.  The machine now carries the fitted
  profile, so auto dispatch resolves identically on both sides.

``--check`` gates the wall/predicted ratios: the median over the
collective grid must land in ``[0.5, 2.0]`` — the fitted model must
track live hardware within 2x where the 1994 presets sat at 1.9-4x.

A third experiment rides along since runtime tracing landed: every
collective is re-measured with ``trace=True`` (the ``wall_s_traced``
column), and a dedicated two-rank ping-pong compares traced vs
untraced round trips (min over interleaved trials — the robust
statistic for an overhead comparison).  ``--check`` additionally gates
that ping-pong trace overhead below 10%: observability must stay
passive.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import socket
import statistics
import sys
import time

import numpy as np

_HERE = os.path.dirname(os.path.abspath(__file__))
_REPO = os.path.dirname(os.path.dirname(_HERE))
DEFAULT_OUTPUT = os.path.join(_REPO, "BENCH_runtime.json")

#: the --check gate: median wall/predicted ratio must land inside
RATIO_GATE = (0.5, 2.0)

#: the --check gate: traced/untraced ping-pong overhead must stay below
TRACE_OVERHEAD_GATE = 0.10

GRIDS = {
    "smoke": {"pingpong_reps": 15, "pingpong_trials": 2,
              "coll_ns": [1024], "coll_reps": 5, "coll_trials": 3,
              "overhead_reps": 40, "overhead_trials": 3},
    "full": {"pingpong_reps": 20, "pingpong_trials": 3,
             "coll_ns": [1024, 65536], "coll_reps": 5, "coll_trials": 5,
             "overhead_reps": 60, "overhead_trials": 5},
}

COLLECTIVES = ["bcast", "allreduce", "collect", "reduce_scatter"]
_COLL_P = 4


def _collective_body(env, op, n, me, sizes):
    from repro.core import api
    if op == "bcast":
        buf = np.arange(n, dtype=np.float64) if me == 0 else None
        yield from api.bcast(env, buf, root=0, total=n)
    elif op == "allreduce":
        yield from api.allreduce(env, np.arange(n, dtype=np.float64) + me)
    elif op == "collect":
        blk = np.arange(sizes[me], dtype=np.float64) + me
        yield from api.collect(env, blk, sizes=sizes)
    elif op == "reduce_scatter":
        yield from api.reduce_scatter(
            env, np.arange(n, dtype=np.float64) + me, sizes=sizes)
    else:  # pragma: no cover
        raise AssertionError(op)


def _collective_prog(op, n, reps):
    """Timed rank program: barrier, then ``reps`` collectives around a
    wall clock.  Returns mean seconds per collective."""
    def prog(env):
        from repro.core import api
        from repro.core.partition import partition_sizes
        sizes = partition_sizes(n, env.nranks)
        yield from api.barrier(env)
        t0 = time.perf_counter()
        for _ in range(reps):
            yield from _collective_body(env, op, n, env.rank, sizes)
        return (time.perf_counter() - t0) / reps
    return prog


def _collective_only_prog(op, n):
    """Prediction program: exactly one collective, **no barrier** — the
    simulated time must cover what the measured wall clock covers."""
    def prog(env):
        from repro.core.partition import partition_sizes
        sizes = partition_sizes(n, env.nranks)
        yield from _collective_body(env, op, n, env.rank, sizes)
    return prog


def measure_collectives(machine, ns, reps, trials, fitted_params):
    """Per-collective wall seconds (median of trials of the slowest
    rank) and the fitted model's barrier-free prediction."""
    from repro.analysis.calibrate import trial_spread
    from repro.core.topology import LinearArray
    from repro.sim import Machine

    out = {}
    predictor = Machine(LinearArray(_COLL_P), fitted_params)
    for op in COLLECTIVES:
        for n in ns:
            raw = []
            raw_traced = []
            for _ in range(trials):
                res = machine.run(_collective_prog(op, n, reps))
                raw.append(max(t for t in res.results if t is not None))
                res = machine.run(_collective_prog(op, n, reps),
                                  trace=True)
                raw_traced.append(
                    max(t for t in res.results if t is not None))
            wall = statistics.median(raw)
            predicted = predictor.run(_collective_only_prog(op, n)).time
            out[f"{op}/p{_COLL_P}/n{n}"] = {
                "wall_s": wall,
                "wall_s_traced": statistics.median(raw_traced),
                "wall_trials": [float(t) for t in raw],
                "wall_spread": trial_spread(raw),
                "predicted_s": predicted,
                "ratio": wall / predicted if predicted > 0 else None,
            }
    return out


def _timed_pingpong_prog(nbytes, reps):
    """Two-rank ping-pong; returns mean seconds per round trip.

    The timed region starts after a barrier and contains only the
    send/recv loop — on traced runs the clock-sync exchange happened
    before the program even started, so any slowdown measured here is
    pure collector overhead (the per-event dict appends).
    """
    def prog(env):
        from repro.core import api
        payload = np.zeros(max(nbytes // 8, 1), dtype=np.float64)
        yield from api.barrier(env)
        t0 = time.perf_counter()
        for k in range(reps):
            if env.rank == 0:
                yield env.send(1, payload, tag=k)
                yield env.recv(1, tag=k)
            else:
                got = yield env.recv(0, tag=k)
                yield env.send(0, got, tag=k)
        return (time.perf_counter() - t0) / reps
    return prog


def measure_trace_overhead(machine, reps, trials,
                           nbytes: int = 1024) -> dict:
    """Traced vs untraced ping-pong round trips on two ranks.

    Interleaves traced and untraced trials (so OS noise hits both
    alike) and compares the **min** of each — the robust statistic for
    an overhead question: minima discard scheduler interference, and
    instrumentation cost is a strict per-event addition that survives
    in the minimum.
    """
    def once(trace: bool) -> float:
        res = machine.run(_timed_pingpong_prog(nbytes, reps),
                          trace=trace)
        return max(t for t in res.results if t is not None)

    once(False)                      # warm up forks, pipes, imports
    untraced, traced = [], []
    for _ in range(trials):
        untraced.append(once(False))
        traced.append(once(True))
    best_untraced, best_traced = min(untraced), min(traced)
    return {
        "nbytes": nbytes,
        "reps": reps,
        "trials": trials,
        "untraced_s": best_untraced,
        "traced_s": best_traced,
        "untraced_trials": [float(t) for t in untraced],
        "traced_trials": [float(t) for t in traced],
        "overhead": best_traced / best_untraced - 1.0,
        "gate": TRACE_OVERHEAD_GATE,
    }


def ratio_stats(collectives: dict) -> dict:
    ratios = sorted(e["ratio"] for e in collectives.values()
                    if e["ratio"] is not None)
    if not ratios:
        return {"count": 0}
    return {"count": len(ratios), "median": statistics.median(ratios),
            "min": ratios[0], "max": ratios[-1],
            "gate": list(RATIO_GATE)}


def main(argv=None) -> int:
    from repro.core.params import PRESETS
    from repro.core.topology import LinearArray
    from repro.runtime import ProcessMachine
    from repro.runtime.profile import ensure_profile

    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--grid", choices=sorted(GRIDS), default="full")
    ap.add_argument("--transport", choices=("local", "tcp"),
                    default="local")
    ap.add_argument("--output", default=DEFAULT_OUTPUT,
                    help="where to write the JSON report")
    ap.add_argument("--check", action="store_true",
                    help="exit nonzero unless the median wall/predicted "
                         f"ratio lands in {list(RATIO_GATE)}")
    ap.add_argument("--recalibrate", action="store_true",
                    help="force a fresh calibration pass even if a "
                         "usable profile is stored")
    args = ap.parse_args(argv)
    grid = GRIDS[args.grid]

    print(f"# calibration pass over {args.transport} transport")
    profile = ensure_profile(transport=args.transport,
                             force=args.recalibrate,
                             reps=grid["pingpong_reps"],
                             trials=grid["pingpong_trials"],
                             progress=lambda m: print(f"  {m}"))
    fitted = profile.params
    probes = profile.provenance["probes"]
    plain = probes["uncontended"]
    for s in plain["samples"]:
        print(f"  {s['nbytes']:>8} B  {s['value'] * 1e6:10.1f} us "
              f"(spread {s['spread'] * 100:.1f}%)")
    for name in ("uncontended", "pairs", "ring"):
        fit = probes[name]["fit"]
        print(f"  {name:<12} fit: alpha = {fit['alpha_s'] * 1e6:.1f} us, "
              f"beta = {fit['beta_s_per_byte'] * 1e9:.3f} ns/B")
    print(f"  effective (pooled contended): "
          f"alpha = {fitted.alpha * 1e6:.1f} us, "
          f"beta = {fitted.beta * 1e9:.3f} ns/B"
          + (f" ({1.0 / fitted.beta / 1e6:.1f} MB/s)"
             if fitted.beta > 0 else ""))

    # the measuring machine carries the fitted profile: auto dispatch
    # resolves the same strategy the predictor simulates
    print(f"# collectives on {_COLL_P} ranks (fitted profile pricing)")
    coll_machine = ProcessMachine(_COLL_P, params=fitted,
                                  topology=LinearArray(_COLL_P),
                                  transport=args.transport, timeout=300)
    collectives = measure_collectives(coll_machine, grid["coll_ns"],
                                      grid["coll_reps"],
                                      grid["coll_trials"], fitted)
    for cid, entry in collectives.items():
        print(f"  {cid:<28} {entry['wall_s'] * 1e6:10.1f} us wall "
              f"({entry['wall_s_traced'] * 1e6:.1f} traced), "
              f"{entry['predicted_s'] * 1e6:10.1f} us predicted, "
              f"ratio {entry['ratio']:.2f}")
    stats = ratio_stats(collectives)

    print("# trace overhead (2-rank ping-pong, traced vs untraced)")
    overhead_machine = ProcessMachine(2, params=fitted,
                                      transport=args.transport,
                                      timeout=300)
    trace_overhead = measure_trace_overhead(
        overhead_machine, grid["overhead_reps"],
        grid["overhead_trials"])
    print(f"  untraced {trace_overhead['untraced_s'] * 1e6:.1f} us, "
          f"traced {trace_overhead['traced_s'] * 1e6:.1f} us per round "
          f"trip -> overhead {trace_overhead['overhead'] * 100:+.1f}% "
          f"(gate < {TRACE_OVERHEAD_GATE * 100:.0f}%)")

    report = {
        "meta": {
            "transport": args.transport,
            "grid": args.grid,
            "host": socket.gethostname(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "profile": profile.to_json(),
        "pingpong": {
            "reps": grid["pingpong_reps"],
            "trials": grid["pingpong_trials"],
            "samples": [[s["nbytes"], s["value"]]
                        for s in plain["samples"]],
            "fitted": plain["fit"],
            "fitted_effective": {"alpha_s": fitted.alpha,
                                 "beta_s_per_byte": fitted.beta},
        },
        "model_presets": {
            name: {"alpha_s": p.alpha, "beta_s_per_byte": p.beta}
            for name, p in sorted(PRESETS.items())
        },
        "collectives": collectives,
        "ratio_stats": stats,
        "trace_overhead": trace_overhead,
    }
    with open(args.output, "w") as f:
        json.dump(report, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.output}")

    if stats.get("count"):
        print(f"ratio median={stats['median']:.2f} "
              f"range [{stats['min']:.2f}, {stats['max']:.2f}] "
              f"gate {list(RATIO_GATE)}")
    if args.check:
        lo, hi = RATIO_GATE
        if not stats.get("count"):
            print("FAIL: no ratio samples")
            return 1
        if not lo <= stats["median"] <= hi:
            print(f"FAIL: median wall/predicted ratio "
                  f"{stats['median']:.3f} outside [{lo}, {hi}]")
            return 1
        if trace_overhead["overhead"] >= TRACE_OVERHEAD_GATE:
            print(f"FAIL: ping-pong trace overhead "
                  f"{trace_overhead['overhead'] * 100:.1f}% >= "
                  f"{TRACE_OVERHEAD_GATE * 100:.0f}%")
            return 1
        print(f"check passed: median ratio {stats['median']:.3f} "
              f"within [{lo}, {hi}]; trace overhead "
              f"{trace_overhead['overhead'] * 100:+.1f}% < "
              f"{TRACE_OVERHEAD_GATE * 100:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
