"""Wall-clock microbenchmarks for the real multi-process backend."""
