"""Table 2: hybrid broadcast strategies on a 30-node linear array.

Regenerates the (logical mesh, strategy) -> alpha/beta coefficient table
and checks the eight rows that are consistent with the paper's own
general formula (the scanned ninth row is a known misprint; see
EXPERIMENTS.md)."""

import os

import pytest

from repro.analysis import format_table, write_csv
from repro.core import CostModel, Strategy
from repro.core.strategy import smc_candidates
from repro.sim import MachineParams

#: the machine of Table 2: alpha = beta = 1, no refinements
T2_PARAMS = MachineParams(alpha=1, beta=1, gamma=0, sw_overhead=0,
                          link_capacity=1)

PAPER_ROWS = [
    # (dims, ops, alpha coeff, beta coeff numerator over 30)
    ((2, 3, 5), "SSMCC", 9, 160),
    ((30,), "M", 5, 150),
    ((2, 15), "SMC", 6, 150),
    ((3, 10), "SSCC", 17, 94),
    ((10, 3), "SSCC", 17, 94),
    ((2, 15), "SSCC", 20, 86),
    ((5, 6), "SSCC", 15, 98),
    ((6, 5), "SSCC", 15, 98),
]

#: the misprinted row, with the coefficient the general formula yields
MISPRINT_ROW = ((3, 10), "SMC", 8, 160)


def compute_table():
    cm = CostModel(T2_PARAMS, itemsize=1)
    rows = []
    for dims, ops, _, _ in PAPER_ROWS + [MISPRINT_ROW]:
        A, B = cm.hybrid_bcast_coefficients(Strategy(dims, ops))
        rows.append((dims, ops, A, B * 30))
    return cm, rows


def test_table2_reproduction(once, results_dir, report):
    cm, rows = once(compute_table)

    display = [["x".join(map(str, d)), ops, f"{a:g}", f"({b:g}/30)n"]
               for d, ops, a, b in rows]
    report("\n" + format_table(
        ["logical mesh", "hybrid", "alpha coeff", "beta coeff"],
        display,
        title="Table 2: broadcast hybrids on a 30-node linear array "
              "(cost = A*alpha + B*n*beta)"))
    write_csv(os.path.join(results_dir, "table2_hybrids.csv"),
              ["dims", "ops", "alpha_coeff", "beta_coeff_times_30"],
              [["x".join(map(str, d)), ops, a, b]
               for d, ops, a, b in rows])

    # exact agreement on the eight consistent rows
    got = {(d, ops): (a, b) for d, ops, a, b in rows}
    for dims, ops, a_ref, b_ref in PAPER_ROWS:
        a, b = got[(dims, ops)]
        assert a == pytest.approx(a_ref), (dims, ops)
        assert b == pytest.approx(b_ref), (dims, ops)

    # the misprinted row per the paper's own general formula
    a, b = got[MISPRINT_ROW[:2]]
    assert a == pytest.approx(MISPRINT_ROW[2])
    assert b == pytest.approx(MISPRINT_ROW[3])


def test_table2_footnote(once):
    """The paper's footnote: three of the tabulated hybrids have a beta
    coefficient worse than or equal to the MST broadcast's 150/30 —
    they are included 'to illustrate the mechanism'."""
    cm, rows = once(compute_table)
    mst_beta = dict(((d, o), b) for d, o, a, b in rows)[((30,), "M")]
    worse_or_equal = [r for r in rows
                      if r[3] >= mst_beta and (r[0], r[1]) != ((30,), "M")]
    assert len(worse_or_equal) >= 2


def test_full_candidate_enumeration(once, results_dir, report):
    """Beyond the paper's nine examples: enumerate *all* candidate
    hybrids for p=30 and verify the Pareto structure — decreasing beta
    coefficient costs increasing alpha."""
    def enumerate_all():
        cm = CostModel(T2_PARAMS, itemsize=1)
        out = []
        for s in smc_candidates(30):
            A, B = cm.hybrid_bcast_coefficients(s)
            out.append((str(s), A, B * 30))
        return sorted(out, key=lambda r: r[2])

    rows = once(enumerate_all)
    write_csv(os.path.join(results_dir, "table2_all_candidates.csv"),
              ["strategy", "alpha_coeff", "beta_coeff_times_30"], rows)
    report("\n" + format_table(
        ["strategy", "A", "B*30"],
        [[s, f"{a:g}", f"{b:g}"] for s, a, b in rows],
        title=f"all {len(rows)} broadcast hybrid candidates for p=30"))

    # Pareto-optimal set: strategies not dominated in both alpha and
    # beta.  A real latency/bandwidth trade-off needs several of them.
    def dominated(r):
        return any(o[1] <= r[1] and o[2] <= r[2]
                   and (o[1] < r[1] or o[2] < r[2]) for o in rows)

    frontier = [r for r in rows if not dominated(r)]
    report("\nPareto frontier: " +
           ", ".join(f"{s} (A={a:g}, B*30={b:g})" for s, a, b in frontier))
    assert len(frontier) >= 4  # a real latency/bandwidth trade-off
    # the pure MST (min alpha) and a deep scatter/collect hybrid
    # (min beta) must both be on it
    names = [s for s, _, _ in frontier]
    assert "(30, M)" in names
