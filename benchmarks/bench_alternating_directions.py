"""Section 7.1, reference [3]: alternating directions within the mesh.

Compares the unidirectional bucket collect/reduce-scatter against the
bidirectional variants across message lengths on a 64-node ring.  Under
the port-limited machine model the win is in the startup term — the
round count halves — so the gap is largest for short blocks and fades
as beta dominates."""

import os

import numpy as np
import pytest

from repro.analysis import format_table, human_bytes, write_csv
from repro.core.bidirectional import (bidirectional_collect,
                                      bidirectional_reduce_scatter)
from repro.core.context import CollContext
from repro.core.primitives_long import bucket_collect, bucket_reduce_scatter
from repro.sim import Machine, PARAGON, Ring

P = 64
MACHINE = Machine(Ring(P), PARAGON)
BLOCK_BYTES = [8, 256, 4096, 65536]


def uni_collect(env, nb):
    ctx = CollContext(env)
    out = yield from bucket_collect(ctx, np.zeros(nb))
    return len(out) == nb * P


def bi_collect(env, nb):
    ctx = CollContext(env)
    out = yield from bidirectional_collect(ctx, np.zeros(nb))
    return len(out) == nb * P


def uni_rs(env, nb):
    ctx = CollContext(env)
    out = yield from bucket_reduce_scatter(ctx, np.zeros(nb * P), "sum")
    return len(out) == nb


def bi_rs(env, nb):
    ctx = CollContext(env)
    out = yield from bidirectional_reduce_scatter(ctx, np.zeros(nb * P),
                                                  "sum")
    return len(out) == nb


_CACHE = []


def run_sweep():
    if _CACHE:
        return _CACHE[0]
    rows = []
    for nbytes in BLOCK_BYTES:
        nb = max(1, nbytes // 8)
        for opname, uni, bi in (("collect", uni_collect, bi_collect),
                                ("reduce-scatter", uni_rs, bi_rs)):
            r_uni = MACHINE.run(uni, nb)
            r_bi = MACHINE.run(bi, nb)
            assert all(r_uni.results) and all(r_bi.results)
            rows.append([opname, nbytes, r_uni.time, r_bi.time,
                         r_uni.time / r_bi.time])
    _CACHE.append(rows)
    return rows


def test_alternating_directions_halve_latency(once, results_dir, report):
    rows = once(run_sweep)
    report("\n" + format_table(
        ["operation", "block", "unidirectional (s)", "bidirectional (s)",
         "speedup"],
        [[op, human_bytes(nb), f"{a:.6f}", f"{b:.6f}", f"{r:.2f}"]
         for op, nb, a, b, r in rows],
        title="section 7.1 [3]: alternating-direction buckets on a "
              "64-node ring"))
    write_csv(os.path.join(results_dir, "alternating_directions.csv"),
              ["operation", "block_bytes", "uni_s", "bi_s", "speedup"],
              rows)

    by = {(op, nb): r for op, nb, _, _, r in rows}
    # short blocks: the startup term dominates and the round count
    # halves -> close to a 2x win
    assert by[("collect", 8)] > 1.6
    assert by[("reduce-scatter", 8)] > 1.5
    # long blocks: the port-limited beta term dominates and the win
    # fades toward (but not below) 1
    assert 0.95 < by[("collect", 65536)] < 1.5

    # the win decays monotonically with block size for the collect
    speedups = [r for op, nb, _, _, r in rows if op == "collect"]
    assert all(b <= a + 0.05 for a, b in zip(speedups, speedups[1:]))


def test_bidirectional_uses_both_channel_sets(once, report):
    """Direct evidence: with tracing on, the bidirectional collect must
    send comparable byte volumes clockwise and counter-clockwise, where
    the unidirectional version sends everything one way."""
    machine = Machine(Ring(16), PARAGON, trace=True)

    def prog(env):
        ctx = CollContext(env)
        out = yield from bidirectional_collect(ctx, np.zeros(64))
        return len(out) == 16 * 64

    run = once(machine.run, prog)
    assert all(run.results)
    cw = sum(r.nbytes for r in run.trace.completed()
             if (r.src + 1) % 16 == r.dst)
    ccw = sum(r.nbytes for r in run.trace.completed()
              if (r.dst + 1) % 16 == r.src)
    report(f"\nclockwise bytes: {cw:.0f}, counter-clockwise: {ccw:.0f}")
    assert cw > 0 and ccw > 0
    assert 0.7 < cw / ccw < 1.5
